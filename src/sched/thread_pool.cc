#include "sched/thread_pool.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace remac {

namespace {

thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_worker_id = -1;

/// Process-wide mirrors of the per-instance pool counters. PoolStats
/// stays the exact per-pool view (tests assert it; SetGlobalThreads
/// recreates pools); these aggregate across every pool's lifetime.
/// The lane families are registered here — unconditionally, so the
/// metrics manifest sees them even in runs that never build one of the
/// lanes — and handed to the matching pool at construction.
struct PoolMetrics {
  Counter* tasks =
      MetricsRegistry::Global().GetCounter("remac.pool.tasks_executed");
  Counter* steals = MetricsRegistry::Global().GetCounter("remac.pool.steals");
  Gauge* peak_queue_depth =
      MetricsRegistry::Global().GetGauge("remac.pool.peak_queue_depth");
  /// Submit-to-start latency, observed only while contention profiling
  /// is on (obs/trace_context Tracer) — the disabled path reads no
  /// clocks on submit or execution.
  Histogram* queue_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.contention.pool_queue_seconds");
  /// Per-lane mirrors (two-lane pool: execution vs request lane).
  Counter* exec_tasks =
      MetricsRegistry::Global().GetCounter("remac.pool.lane.exec.tasks");
  Counter* request_tasks =
      MetricsRegistry::Global().GetCounter("remac.pool.lane.request.tasks");
  Gauge* exec_threads =
      MetricsRegistry::Global().GetGauge("remac.pool.lane.exec.threads");
  Gauge* request_threads =
      MetricsRegistry::Global().GetGauge("remac.pool.lane.request.threads");
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics;
  return metrics;
}

int ResolveThreads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 16u));
}

/// Holder for one process-wide lane; reset by SetGlobalThreads.
struct LaneHolder {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  int configured = 0;  // <= 0: hardware default
};

LaneHolder& ExecHolder() {
  static LaneHolder holder;
  return holder;
}

LaneHolder& RequestHolder() {
  static LaneHolder holder;
  return holder;
}

ThreadPool& LanePool(LaneHolder& holder, const char* lane) {
  std::lock_guard<std::mutex> lock(holder.mu);
  if (holder.pool == nullptr) {
    holder.pool = std::make_unique<ThreadPool>(holder.configured, lane);
  }
  return *holder.pool;
}

void ResizeLane(LaneHolder& holder, int threads) {
  std::lock_guard<std::mutex> lock(holder.mu);
  holder.configured = threads;
  if (holder.pool != nullptr &&
      holder.pool->size() == ResolveThreads(threads)) {
    return;
  }
  holder.pool.reset();  // joins workers; the lane accessor recreates
}

}  // namespace

ThreadPool::ThreadPool(int threads, const char* lane) {
  const int n = ResolveThreads(threads);
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  if (lane != nullptr) {
    const bool exec = std::strcmp(lane, "exec") == 0;
    lane_tasks_ = exec ? Metrics().exec_tasks : Metrics().request_tasks;
    lane_threads_ = exec ? Metrics().exec_threads : Metrics().request_threads;
    lane_threads_->Set(static_cast<double>(n));
  }
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& queue : queues_) {
    // Lock-then-notify closes the race with a worker between its
    // predicate check and its block (see WakeForTask).
    { std::lock_guard<std::mutex> lock(queue->park_mu); }
    queue->park_cv.notify_all();
  }
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::WakeForTask(size_t target) {
  // Saturated fast path: with every worker busy there is nobody to wake
  // and nothing to lock. The seq_cst pending_ increment in Submit and
  // the seq_cst parked-flag store in WorkerLoop make this a Dekker pair:
  // a worker that decided to park on an empty pool is visible here, and
  // a submit this load misses is visible to the worker's predicate.
  if (parked_count_.load(std::memory_order_seq_cst) == 0) return;
  const size_t n = queues_.size();
  for (size_t probe = 0; probe < n; ++probe) {
    Queue& queue = *queues_[(target + probe) % n];
    if (!queue.parked.load(std::memory_order_seq_cst)) continue;
    // Empty critical section: serializes with the owner's atomic
    // predicate-check-then-block so the notify cannot land in between
    // and get lost.
    { std::lock_guard<std::mutex> lock(queue.park_mu); }
    queue.park_cv.notify_one();
    return;
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (Tracer::Global().any_active()) {
    // Profiling wrapper: stamp the submit time and carry the submitter's
    // trace context into the task, so (a) submit-to-start queue latency
    // lands in remac.contention.pool_queue_seconds and (b) spans the
    // task records join the submitting request's tree even though it
    // runs on an arbitrary worker.
    fn = [fn = std::move(fn), ctx = CurrentTraceContext(),
          submit_us = TraceNowMicros()] {
      const double start_us = TraceNowMicros();
      Metrics().queue_seconds->Observe((start_us - submit_us) * 1e-6);
      RecordWaitSpanIn(ctx, "pool-queue", submit_us, start_us);
      TraceContextScope scope(ctx);
      fn();
    };
  }
  // A worker submitting to its own pool keeps the continuation on its
  // own deque: it is the thread most likely to pop it next (front,
  // FIFO), and pushing it to a sibling forces a park/steal round trip.
  // External submitters spread round-robin.
  const size_t target =
      tl_pool == this
          ? static_cast<size_t>(tl_worker_id)
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->items.push_back(std::move(fn));
    const auto depth = static_cast<int64_t>(queues_[target]->items.size());
    int64_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_queue_depth_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
    Metrics().peak_queue_depth->SetMax(static_cast<double>(depth));
  }
  pending_.fetch_add(1, std::memory_order_seq_cst);
  // Wake the owner of the deque that received the task; a worker
  // submitting to itself instead wakes a parked sibling (it is busy with
  // the current task, and the fan-out may hold parallelism).
  WakeForTask(tl_pool == this ? (target + 1) % queues_.size() : target);
}

bool ThreadPool::PopTask(int preferred, std::function<void()>* out) {
  const int n = static_cast<int>(queues_.size());
  // Own queue first (front: LIFO-ish locality for the owner is not
  // needed here; FIFO keeps DAG submission order roughly intact).
  for (int probe = 0; probe < n; ++probe) {
    const int q = (preferred + probe) % n;
    Queue& queue = *queues_[q];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.items.empty()) continue;
    if (probe == 0) {
      *out = std::move(queue.items.front());
      queue.items.pop_front();
    } else {
      // Steal from the back to reduce contention with the owner.
      *out = std::move(queue.items.back());
      queue.items.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      Metrics().steals->Add();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int index) {
  tl_pool = this;
  tl_worker_id = index;
  Queue& own = *queues_[static_cast<size_t>(index)];
  std::function<void()> task;
  while (true) {
    if (PopTask(index, &task)) {
      task();
      task = nullptr;
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().tasks->Add();
      if (lane_tasks_ != nullptr) lane_tasks_->Add();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // Park on the worker's own condition variable. The parked flag is
    // published (seq_cst) before the predicate reads pending_, pairing
    // with WakeForTask's pending_-then-parked order: either this worker
    // sees the new task and skips the sleep, or the submitter sees the
    // flag and wakes it. No global mutex is involved.
    std::unique_lock<std::mutex> lock(own.park_mu);
    own.parked.store(true, std::memory_order_seq_cst);
    parked_count_.fetch_add(1, std::memory_order_seq_cst);
    wait_wakeups_.fetch_add(1, std::memory_order_relaxed);
    own.park_cv.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    own.parked.store(false, std::memory_order_relaxed);
    parked_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  tl_pool = nullptr;
  tl_worker_id = -1;
}

bool ThreadPool::TryRunOne() {
  const int preferred =
      tl_pool == this
          ? tl_worker_id
          : static_cast<int>(next_queue_.load(std::memory_order_relaxed) %
                             queues_.size());
  std::function<void()> task;
  if (!PopTask(preferred, &task)) return false;
  task();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  Metrics().tasks->Add();
  if (lane_tasks_ != nullptr) lane_tasks_->Add();
  return true;
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = static_cast<int>(tasks.size()) - 1;
  for (size_t i = 1; i < tasks.size(); ++i) {
    Submit([latch, task = std::move(tasks[i])] {
      task();
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  // The caller contributes the first chunk, then helps drain queues
  // until its own sub-tasks finished — this is what makes nested
  // RunAndWait deadlock-free even on a single-thread pool.
  tasks[0]();
  while (true) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      if (latch->remaining == 0) return;
    }
    if (TryRunOne()) continue;
    // Every queue is empty, so the remaining sub-tasks are executing on
    // other threads: sleep until the last one's notify instead of
    // polling (the completion check runs under latch->mu, so the notify
    // cannot be missed).
    std::unique_lock<std::mutex> lock(latch->mu);
    wait_wakeups_.fetch_add(1, std::memory_order_relaxed);
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
    return;
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats stats;
  stats.threads = size();
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.peak_queue_depth =
      peak_queue_depth_.load(std::memory_order_relaxed);
  stats.wait_wakeups = wait_wakeups_.load(std::memory_order_relaxed);
  return stats;
}

int ThreadPool::CurrentWorkerId() { return tl_worker_id; }

ThreadPool* ThreadPool::CurrentPool() { return tl_pool; }

ThreadPool& ThreadPool::Global() { return LanePool(ExecHolder(), "exec"); }

ThreadPool& ThreadPool::RequestLane() {
  return LanePool(RequestHolder(), "request");
}

void ThreadPool::SetGlobalThreads(int threads) {
  ResizeLane(ExecHolder(), threads);
  ResizeLane(RequestHolder(), threads);
}

void ThreadPool::SetExecLaneThreads(int threads) {
  ResizeLane(ExecHolder(), threads);
}

}  // namespace remac
