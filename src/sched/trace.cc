#include "sched/trace.h"

#include <cstdio>

#include "common/string_util.h"
#include "obs/trace_context.h"

namespace remac {

namespace {

/// Minimal JSON string escaping (labels are identifiers in practice).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

TraceSink::TraceSink() : origin_us_(0.0) {}

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

double TraceSink::NowMicros() const {
  // Shared process epoch (obs/trace_context): sink events and request
  // spans carry directly comparable timestamps.
  return TraceNowMicros() - origin_us_;
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

int64_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(events_.size());
}

std::string TraceSink::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += StringFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,"
        "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"queue_us\":%.3f,\"flops\":%.0f,\"bytes\":%.0f}}%s\n",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(),
        e.thread, e.start_us, e.duration_us, e.queue_us, e.flops, e.bytes,
        i + 1 < events.size() ? "," : "");
  }
  out += "]}\n";
  return out;
}

Status TraceSink::WriteChromeJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace remac
