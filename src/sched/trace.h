#ifndef REMAC_SCHED_TRACE_H_
#define REMAC_SCHED_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace remac {

/// One completed task execution, in wall-clock microseconds on the
/// process-wide trace clock (obs/trace_context TraceNowMicros), so sink
/// events and request spans share one epoch.
struct TraceEvent {
  std::string name;      // task label (assignment target, "loop", ...)
  std::string category;  // "task", "loop", "condition"
  int thread = -1;       // pool worker index (-1 = external caller)
  double start_us = 0.0;
  double duration_us = 0.0;
  /// Latency between the task becoming ready (all deps met) and its
  /// execution starting — queueing + steal delay.
  double queue_us = 0.0;
  /// Simulated work the task booked while running.
  double flops = 0.0;
  double bytes = 0.0;
};

/// \brief Thread-safe collector of per-task trace events.
///
/// The parallel executor records one event per executed task; the sink
/// serializes them as a Chrome-trace JSON (load via chrome://tracing or
/// https://ui.perfetto.dev) with one row per pool worker.
class TraceSink {
 public:
  TraceSink();

  void Record(TraceEvent event);

  /// Microseconds on the shared process trace clock (event timestamps).
  double NowMicros() const;

  std::vector<TraceEvent> Events() const;
  int64_t size() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  /// Offset subtracted from the shared process clock (0: raw epoch).
  double origin_us_ = 0.0;
};

}  // namespace remac

#endif  // REMAC_SCHED_TRACE_H_
