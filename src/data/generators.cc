#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_util.h"
#include "matrix/kernels.h"

namespace remac {

std::vector<DatasetSpec> PaperDatasetSpecs() {
  // Paper Table 2, rows scaled by ~1000 (criteo) / ~1000 (reddit), column
  // counts scaled by ~10 for the sparse sets so the fat-vs-thin contrast
  // survives: cri3/red3 stay the "fat" datasets whose A^T A is large.
  return {
      DatasetSpec{"cri1", 120000, 47, 0.60, 0.0, 0.0, 1001},
      DatasetSpec{"cri2", 30000, 870, 4.5e-3, 1.1, 1.1, 1002},
      DatasetSpec{"cri3", 30000, 1500, 2.6e-3, 1.1, 1.1, 1003},
      DatasetSpec{"red1", 120000, 34, 0.51, 0.0, 0.0, 1004},
      DatasetSpec{"red2", 40000, 500, 3.9e-3, 1.1, 1.1, 1005},
      DatasetSpec{"red3", 40000, 2000, 9.6e-4, 1.1, 1.1, 1006},
  };
}

Result<DatasetSpec> PaperDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown paper dataset '" + name + "'");
}

DatasetSpec ZipfSpec(double exponent) {
  DatasetSpec spec;
  spec.name = StringFormat("zipf-%.1f", exponent);
  spec.rows = 30000;
  spec.cols = 870;
  spec.sparsity = 4.5e-3;
  spec.zipf_rows = exponent;
  spec.zipf_cols = exponent;
  spec.seed = 2000 + static_cast<uint64_t>(exponent * 10);
  return spec;
}

Matrix GenerateMatrix(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  if (spec.sparsity > kDenseFormatThreshold) {
    DenseMatrix m(spec.rows, spec.cols);
    for (int64_t i = 0; i < m.size(); ++i) {
      if (rng.NextDouble() < spec.sparsity) {
        m.data()[i] = rng.NextGaussian();
      }
    }
    return Matrix::WrapDense(std::move(m));
  }
  const int64_t target_nnz = static_cast<int64_t>(
      spec.sparsity * static_cast<double>(spec.rows) *
      static_cast<double>(spec.cols));
  // Allocate per-row non-zero counts proportional to the row Zipf weights
  // (capped at the column count), then draw distinct columns per row from
  // the column Zipf distribution. This hits the target sparsity exactly
  // even under extreme skew, where naive rejection sampling saturates.
  std::vector<double> row_weights(static_cast<size_t>(spec.rows));
  double weight_sum = 0.0;
  for (int64_t r = 0; r < spec.rows; ++r) {
    row_weights[r] = 1.0 / std::pow(static_cast<double>(r + 1),
                                    spec.zipf_rows);
    weight_sum += row_weights[r];
  }
  std::vector<int64_t> row_alloc(static_cast<size_t>(spec.rows), 0);
  // Cap how full a single row may get: real skewed logs have heavy rows,
  // not saturated ones, and without the cap the head rows touch *every*
  // column, which would make A^T A fully dense at any skew.
  const int64_t row_cap =
      std::min(spec.cols, std::max<int64_t>(8, spec.cols / 16));
  int64_t allocated = 0;
  for (int64_t r = 0; r < spec.rows && allocated < target_nnz; ++r) {
    const int64_t want = static_cast<int64_t>(
        std::llround(static_cast<double>(target_nnz) * row_weights[r] /
                     weight_sum));
    row_alloc[r] = std::min(std::min<int64_t>(want, row_cap),
                            target_nnz - allocated);
    allocated += row_alloc[r];
  }
  // Distribute any rounding remainder over rows with headroom.
  for (int64_t r = 0; allocated < target_nnz && r < spec.rows; ++r) {
    if (row_alloc[r] < row_cap) {
      ++row_alloc[r];
      ++allocated;
    }
  }
  const ZipfSampler col_sampler(static_cast<uint64_t>(spec.cols),
                                spec.zipf_cols);
  std::vector<std::tuple<int64_t, int64_t, double>> triplets;
  triplets.reserve(static_cast<size_t>(target_nnz));
  std::unordered_set<int64_t> row_seen;
  for (int64_t r = 0; r < spec.rows; ++r) {
    if (row_alloc[r] == 0) continue;
    row_seen.clear();
    int64_t attempts = 0;
    const int64_t cap = row_alloc[r] * 64 + 64;
    while (static_cast<int64_t>(row_seen.size()) < row_alloc[r] &&
           attempts < cap) {
      ++attempts;
      row_seen.insert(static_cast<int64_t>(col_sampler.Sample(rng)));
    }
    // Saturated head: fill the remainder from the lowest unused ranks.
    for (int64_t c = 0;
         static_cast<int64_t>(row_seen.size()) < row_alloc[r] &&
         c < spec.cols;
         ++c) {
      row_seen.insert(c);
    }
    for (int64_t c : row_seen) {
      triplets.emplace_back(r, c, rng.NextGaussian());
    }
  }
  return Matrix::WrapCsr(
      CsrMatrix::FromTriplets(spec.rows, spec.cols, std::move(triplets)));
}

Status RegisterDataset(DataCatalog* catalog, const DatasetSpec& spec,
                       bool with_partial_dfp_inputs) {
  Matrix a = GenerateMatrix(spec);
  // Regression targets: b = A w + noise, so the least-squares scripts
  // optimize a well-posed problem.
  Rng rng(spec.seed ^ 0xb0b5ULL);
  DenseMatrix w(spec.cols, 1);
  for (int64_t i = 0; i < w.size(); ++i) {
    w.data()[i] = rng.NextGaussian() * 0.1;
  }
  auto product = Multiply(a, Matrix::WrapDense(std::move(w)));
  if (!product.ok()) return product.status();
  DenseMatrix b = product.value().ToDense();
  for (int64_t i = 0; i < b.size(); ++i) {
    b.data()[i] += rng.NextGaussian() * 0.01;
  }
  catalog->Register(spec.name + "_b", Matrix::WrapDense(std::move(b)));
  if (with_partial_dfp_inputs) {
    DenseMatrix d(spec.cols, 1);
    for (int64_t i = 0; i < d.size(); ++i) d.data()[i] = rng.NextGaussian();
    catalog->Register(spec.name + "_pd", Matrix::WrapDense(std::move(d)));
    DenseMatrix h(spec.cols, spec.cols);
    for (int64_t i = 0; i < h.size(); ++i) {
      h.data()[i] = rng.NextGaussian() * 0.01;
    }
    catalog->Register(spec.name + "_pH", Matrix::WrapDense(std::move(h)));
  }
  catalog->Register(spec.name, std::move(a));
  return Status::OK();
}

}  // namespace remac
