#ifndef REMAC_DATA_GENERATORS_H_
#define REMAC_DATA_GENERATORS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "matrix/matrix.h"
#include "plan/plan_builder.h"

namespace remac {

/// \brief Shape/sparsity recipe for a synthetic dataset.
///
/// The paper evaluates on Criteo and Reddit samples (Table 2). The
/// originals are 30-40GB click/comment logs; here we generate matrices
/// with the same shape class (tall-thin dense vs. tall sparse vs. "fat"
/// sparse) and sparsity at laptop scale (rows divided by ~1000), which
/// preserves every effect the experiments measure (see DESIGN.md).
struct DatasetSpec {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 0;
  double sparsity = 1.0;
  /// Zipf exponents of the row/column marginals of the non-zeros
  /// (0 = uniform). Real CTR/comment data is power-law skewed, so the
  /// Table-2 sparse datasets default to a mild skew.
  double zipf_rows = 0.0;
  double zipf_cols = 0.0;
  uint64_t seed = 42;
};

/// The six Table-2 datasets, scaled: cri1, cri2, cri3, red1, red2, red3.
std::vector<DatasetSpec> PaperDatasetSpecs();

/// Lookup by abbreviation ("cri2"); error if unknown.
Result<DatasetSpec> PaperDatasetSpec(const std::string& name);

/// A cri2-shaped dataset skewed with the given Zipf exponent on both
/// rows and columns, named "zipf-<e>" (Section 6.5).
DatasetSpec ZipfSpec(double exponent);

/// Generates the matrix of a spec (deterministic per seed).
Matrix GenerateMatrix(const DatasetSpec& spec);

/// Registers the dataset plus its derived inputs into the catalog:
///   <name>     the data matrix A
///   <name>_b   a label vector A * w + noise (regression targets)
/// and, when `with_partial_dfp_inputs` is set,
///   <name>_pd  a random n x 1 direction vector
///   <name>_pH  a random n x n matrix (partial-DFP's H)
Status RegisterDataset(DataCatalog* catalog, const DatasetSpec& spec,
                       bool with_partial_dfp_inputs = false);

}  // namespace remac

#endif  // REMAC_DATA_GENERATORS_H_
