#include "lang/parser.h"

#include "common/string_util.h"
#include "lang/lexer.h"

namespace remac {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!Check(TokenKind::kEnd)) {
      auto stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      program.statements.push_back(std::move(stmt).value());
    }
    return program;
  }

  Result<std::unique_ptr<Expr>> ParseSingleExpression() {
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    if (!Check(TokenKind::kEnd)) {
      return Error("trailing input after expression");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(StringFormat("line %d: %s (got %s '%s')",
                                           Peek().line, what.c_str(),
                                           TokenKindName(Peek().kind),
                                           Peek().text.c_str()));
  }

  Status Expect(TokenKind kind, const char* context) {
    if (Match(kind)) return Status::OK();
    return Error(StringFormat("expected %s %s", TokenKindName(kind), context));
  }

  Result<std::unique_ptr<Stmt>> ParseStmt() {
    if (Check(TokenKind::kKeywordWhile)) return ParseWhile();
    if (Check(TokenKind::kKeywordFor)) return ParseFor();
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected a statement");
    }
    const Token name = Advance();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kAssign, "in assignment"));
    auto value = ParseExpr();
    if (!value.ok()) return value.status();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "after assignment"));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kAssign;
    stmt->target = name.text;
    stmt->value = std::move(value).value();
    stmt->line = name.line;
    return stmt;
  }

  Result<std::unique_ptr<Stmt>> ParseWhile() {
    const Token kw = Advance();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after 'while'"));
    auto condition = ParseExpr();
    if (!condition.ok()) return condition.status();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after while condition"));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->condition = std::move(condition).value();
    stmt->line = kw.line;
    REMAC_RETURN_NOT_OK(ParseBlock(&stmt->body));
    return stmt;
  }

  Result<std::unique_ptr<Stmt>> ParseFor() {
    const Token kw = Advance();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "after 'for'"));
    if (!Check(TokenKind::kIdentifier)) return Error("expected loop variable");
    const Token var = Advance();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kKeywordIn, "in for header"));
    auto begin = ParseExpr();
    if (!begin.ok()) return begin.status();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kColon, "in for range"));
    auto end = ParseExpr();
    if (!end.ok()) return end.status();
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "after for header"));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->loop_var = var.text;
    stmt->range_begin = std::move(begin).value();
    stmt->range_end = std::move(end).value();
    stmt->line = kw.line;
    REMAC_RETURN_NOT_OK(ParseBlock(&stmt->body));
    return stmt;
  }

  Status ParseBlock(std::vector<std::unique_ptr<Stmt>>* body) {
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "to open a block"));
    while (!Check(TokenKind::kRBrace)) {
      if (Check(TokenKind::kEnd)) return Error("unterminated block");
      auto stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      body->push_back(std::move(stmt).value());
    }
    REMAC_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "to close a block"));
    return Status::OK();
  }

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseCmp(); }

  Result<std::unique_ptr<Expr>> ParseCmp() {
    auto lhs = ParseAddSub();
    if (!lhs.ok()) return lhs.status();
    BinaryOp op;
    if (Check(TokenKind::kLess)) op = BinaryOp::kLess;
    else if (Check(TokenKind::kGreater)) op = BinaryOp::kGreater;
    else if (Check(TokenKind::kLessEq)) op = BinaryOp::kLessEq;
    else if (Check(TokenKind::kGreaterEq)) op = BinaryOp::kGreaterEq;
    else if (Check(TokenKind::kEqual)) op = BinaryOp::kEqual;
    else if (Check(TokenKind::kNotEqual)) op = BinaryOp::kNotEqual;
    else return lhs;
    const int line = Advance().line;
    auto rhs = ParseAddSub();
    if (!rhs.ok()) return rhs.status();
    return Expr::Binary(op, std::move(lhs).value(), std::move(rhs).value(),
                        line);
  }

  Result<std::unique_ptr<Expr>> ParseAddSub() {
    auto lhs = ParseMulDiv();
    if (!lhs.ok()) return lhs.status();
    std::unique_ptr<Expr> acc = std::move(lhs).value();
    for (;;) {
      BinaryOp op;
      if (Check(TokenKind::kPlus)) op = BinaryOp::kAdd;
      else if (Check(TokenKind::kMinus)) op = BinaryOp::kSub;
      else break;
      const int line = Advance().line;
      auto rhs = ParseMulDiv();
      if (!rhs.ok()) return rhs.status();
      acc = Expr::Binary(op, std::move(acc), std::move(rhs).value(), line);
    }
    return acc;
  }

  Result<std::unique_ptr<Expr>> ParseMulDiv() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs.status();
    std::unique_ptr<Expr> acc = std::move(lhs).value();
    for (;;) {
      BinaryOp op;
      if (Check(TokenKind::kStar)) op = BinaryOp::kElemMul;
      else if (Check(TokenKind::kSlash)) op = BinaryOp::kDiv;
      else if (Check(TokenKind::kMatMul)) op = BinaryOp::kMatMul;
      else break;
      const int line = Advance().line;
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs.status();
      acc = Expr::Binary(op, std::move(acc), std::move(rhs).value(), line);
    }
    return acc;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      const int line = Advance().line;
      auto operand = ParseUnary();
      if (!operand.ok()) return operand.status();
      return Expr::Neg(std::move(operand).value(), line);
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    if (Check(TokenKind::kNumber)) {
      const Token t = Advance();
      return Expr::Number(t.number, t.line);
    }
    if (Check(TokenKind::kString)) {
      const Token t = Advance();
      return Expr::Str(t.text, t.line);
    }
    if (Check(TokenKind::kLParen)) {
      Advance();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      REMAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "to close '('"));
      return inner;
    }
    if (Check(TokenKind::kIdentifier)) {
      const Token name = Advance();
      if (Match(TokenKind::kLParen)) {
        std::vector<std::unique_ptr<Expr>> args;
        if (!Check(TokenKind::kRParen)) {
          for (;;) {
            auto arg = ParseExpr();
            if (!arg.ok()) return arg.status();
            args.push_back(std::move(arg).value());
            if (!Match(TokenKind::kComma)) break;
          }
        }
        REMAC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "to close call"));
        return Expr::Call(name.text, std::move(args), name.line);
      }
      return Expr::Ident(name.text, name.line);
    }
    return Error("expected an expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseProgram();
}

Result<std::unique_ptr<Expr>> ParseExpression(std::string_view source) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseSingleExpression();
}

}  // namespace remac
