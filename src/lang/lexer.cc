#include "lang/lexer.h"

#include <cctype>
#include <charconv>
#include <system_error>

#include "common/string_util.h"

namespace remac {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kMatMul: return "'%*%'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqual: return "'=='";
    case TokenKind::kNotEqual: return "'!='";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kKeywordWhile: return "'while'";
    case TokenKind::kKeywordFor: return "'for'";
    case TokenKind::kKeywordIn: return "'in'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, std::string text, double number = 0.0) {
    tokens.push_back(Token{kind, std::move(text), number, line, col});
  };
  auto error = [&](const std::string& what) {
    return Status::ParseError(
        StringFormat("line %d:%d: %s", line, col, what.c_str()));
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++col;
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_' || source[j] == '.')) {
        ++j;
      }
      std::string word(source.substr(i, j - i));
      if (word == "while") {
        push(TokenKind::kKeywordWhile, word);
      } else if (word == "for") {
        push(TokenKind::kKeywordFor, word);
      } else if (word == "in") {
        push(TokenKind::kKeywordIn, word);
      } else {
        push(TokenKind::kIdentifier, word);
      }
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                       source[j] == '.' || source[j] == 'e' || source[j] == 'E' ||
                       ((source[j] == '+' || source[j] == '-') && j > i &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        ++j;
      }
      std::string text(source.substr(i, j - i));
      // std::from_chars, not strtod: strtod honors LC_NUMERIC, so a host
      // locale with a comma decimal separator (de_DE, fr_FR...) would
      // silently truncate "0.5" to 0. Script grammar is locale-invariant.
      double value = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec == std::errc::result_out_of_range) {
        return error("number '" + text + "' is out of range");
      }
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return error("malformed number '" + text + "'");
      }
      push(TokenKind::kNumber, std::move(text), value);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      while (j < n && source[j] != '"' && source[j] != '\n') ++j;
      if (j >= n || source[j] != '"') return error("unterminated string");
      push(TokenKind::kString, std::string(source.substr(i + 1, j - i - 1)));
      col += static_cast<int>(j - i + 1);
      i = j + 1;
      continue;
    }
    if (c == '%') {
      if (i + 2 < n && source[i + 1] == '*' && source[i + 2] == '%') {
        push(TokenKind::kMatMul, "%*%");
        i += 3;
        col += 3;
        continue;
      }
      return error("stray '%' (did you mean '%*%'?)");
    }
    auto two = [&](char second, TokenKind pair_kind,
                   TokenKind single_kind) -> bool {
      if (i + 1 < n && source[i + 1] == second) {
        push(pair_kind, std::string{c, second});
        i += 2;
        col += 2;
        return true;
      }
      push(single_kind, std::string(1, c));
      ++i;
      ++col;
      return true;
    };
    switch (c) {
      case '+': push(TokenKind::kPlus, "+"); ++i; ++col; continue;
      case '-': push(TokenKind::kMinus, "-"); ++i; ++col; continue;
      case '*': push(TokenKind::kStar, "*"); ++i; ++col; continue;
      case '/': push(TokenKind::kSlash, "/"); ++i; ++col; continue;
      case '(': push(TokenKind::kLParen, "("); ++i; ++col; continue;
      case ')': push(TokenKind::kRParen, ")"); ++i; ++col; continue;
      case '{': push(TokenKind::kLBrace, "{"); ++i; ++col; continue;
      case '}': push(TokenKind::kRBrace, "}"); ++i; ++col; continue;
      case ',': push(TokenKind::kComma, ","); ++i; ++col; continue;
      case ';': push(TokenKind::kSemicolon, ";"); ++i; ++col; continue;
      case ':': push(TokenKind::kColon, ":"); ++i; ++col; continue;
      case '=': two('=', TokenKind::kEqual, TokenKind::kAssign); continue;
      case '<': two('=', TokenKind::kLessEq, TokenKind::kLess); continue;
      case '>': two('=', TokenKind::kGreaterEq, TokenKind::kGreater); continue;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNotEqual, "!=");
          i += 2;
          col += 2;
          continue;
        }
        return error("stray '!'");
      default:
        return error(StringFormat("unexpected character '%c'", c));
    }
  }
  push(TokenKind::kEnd, "");
  return tokens;
}

}  // namespace remac
