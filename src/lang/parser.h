#ifndef REMAC_LANG_PARSER_H_
#define REMAC_LANG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "lang/ast.h"

namespace remac {

/// Parses a DML-like script into a Program.
///
/// Grammar (statements end with ';'; '#' comments):
///
///   program   := stmt*
///   stmt      := ident '=' expr ';'
///              | 'while' '(' expr ')' '{' stmt* '}'
///              | 'for' '(' ident 'in' expr ':' expr ')' '{' stmt* '}'
///   expr      := cmp
///   cmp       := addsub (('<'|'>'|'<='|'>='|'=='|'!=') addsub)?
///   addsub    := muldiv (('+'|'-') muldiv)*
///   muldiv    := unary (('*'|'/'|'%*%') unary)*
///   unary     := '-' unary | primary
///   primary   := number | string | ident ('(' args ')')? | '(' expr ')'
Result<Program> ParseProgram(std::string_view source);

/// Parses a single expression (used in tests and by baseline optimizers).
Result<std::unique_ptr<Expr>> ParseExpression(std::string_view source);

}  // namespace remac

#endif  // REMAC_LANG_PARSER_H_
