#ifndef REMAC_LANG_LEXER_H_
#define REMAC_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace remac {

/// Token categories of the DML-like script language.
enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kMatMul,      // %*%
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kAssign,      // =
  kLess,        // <
  kGreater,     // >
  kLessEq,      // <=
  kGreaterEq,   // >=
  kEqual,       // ==
  kNotEqual,    // !=
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kComma,       // ,
  kSemicolon,   // ;
  kKeywordWhile,
  kKeywordFor,
  kKeywordIn,
  kColon,       // :
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  double number = 0.0;  // valid when kind == kNumber
  int line = 0;
  int column = 0;
};

/// \brief Tokenizes a script. '#' starts a comment to end of line.
///
/// Numbers are doubles ("2", "0.5", "1e-4"); strings are double-quoted
/// with no escape sequences (they only name datasets in read()).
Result<std::vector<Token>> Tokenize(std::string_view source);

/// Human-readable token kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace remac

#endif  // REMAC_LANG_LEXER_H_
