#ifndef REMAC_LANG_AST_H_
#define REMAC_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace remac {

/// Expression node kinds of the script AST.
enum class ExprKind {
  kIdentifier,
  kNumber,
  kString,
  kCall,     // builtin: read, t, zeros, ones, eye, rand, ncol, nrow, sum, norm
  kBinary,   // + - * / %*% < > <= >= == !=
  kUnaryMinus,
};

/// Binary operators as they appear in scripts.
enum class BinaryOp {
  kAdd,
  kSub,
  kElemMul,   // *
  kDiv,       // /
  kMatMul,    // %*%
  kLess,
  kGreater,
  kLessEq,
  kGreaterEq,
  kEqual,
  kNotEqual,
};

const char* BinaryOpName(BinaryOp op);

/// \brief A node of the script expression tree.
///
/// Plain tree-of-unique_ptr structure; the plan builder lowers it into the
/// operator DAG. Kept deliberately dumb: no typing here.
struct Expr {
  ExprKind kind;
  // kIdentifier / kCall: the name; kString: the literal.
  std::string name;
  // kNumber.
  double number = 0.0;
  // kBinary.
  BinaryOp op = BinaryOp::kAdd;
  // kCall arguments, kBinary operands (2), kUnaryMinus operand (1).
  std::vector<std::unique_ptr<Expr>> children;
  int line = 0;

  static std::unique_ptr<Expr> Ident(std::string name, int line = 0);
  static std::unique_ptr<Expr> Number(double value, int line = 0);
  static std::unique_ptr<Expr> Str(std::string value, int line = 0);
  static std::unique_ptr<Expr> Call(std::string name,
                                    std::vector<std::unique_ptr<Expr>> args,
                                    int line = 0);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs, int line = 0);
  static std::unique_ptr<Expr> Neg(std::unique_ptr<Expr> operand,
                                   int line = 0);

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// Unparses to script syntax (stable, fully parenthesized).
  std::string ToString() const;
};

/// Statement kinds.
enum class StmtKind { kAssign, kWhile, kFor };

/// \brief A statement: an assignment or a loop with a body.
struct Stmt {
  StmtKind kind;
  // kAssign.
  std::string target;
  std::unique_ptr<Expr> value;
  // kWhile: condition; kFor: loop variable in [range_begin, range_end].
  std::unique_ptr<Expr> condition;
  std::string loop_var;
  std::unique_ptr<Expr> range_begin;
  std::unique_ptr<Expr> range_end;
  std::vector<std::unique_ptr<Stmt>> body;
  int line = 0;

  std::unique_ptr<Stmt> Clone() const;
  std::string ToString(int indent = 0) const;
};

/// \brief A parsed script: a statement list.
struct Program {
  std::vector<std::unique_ptr<Stmt>> statements;

  std::string ToString() const;
};

}  // namespace remac

#endif  // REMAC_LANG_AST_H_
