#include "lang/ast.h"

#include "common/string_util.h"

namespace remac {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kElemMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMatMul: return "%*%";
    case BinaryOp::kLess: return "<";
    case BinaryOp::kGreater: return ">";
    case BinaryOp::kLessEq: return "<=";
    case BinaryOp::kGreaterEq: return ">=";
    case BinaryOp::kEqual: return "==";
    case BinaryOp::kNotEqual: return "!=";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Ident(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdentifier;
  e->name = std::move(name);
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::Number(double value, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = value;
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::Str(std::string value, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kString;
  e->name = std::move(value);
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::Call(std::string name,
                                 std::vector<std::unique_ptr<Expr>> args,
                                 int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(name);
  e->children = std::move(args);
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::Neg(std::unique_ptr<Expr> operand, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnaryMinus;
  e->children.push_back(std::move(operand));
  e->line = line;
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->name = name;
  e->number = number;
  e->op = op;
  e->line = line;
  e->children.reserve(children.size());
  for (const auto& child : children) e->children.push_back(child->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kIdentifier:
      return name;
    case ExprKind::kNumber:
      return StringFormat("%g", number);
    case ExprKind::kString:
      return "\"" + name + "\"";
    case ExprKind::kCall: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const auto& child : children) args.push_back(child->ToString());
      return name + "(" + Join(args, ", ") + ")";
    }
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnaryMinus:
      return "(-" + children[0]->ToString() + ")";
  }
  return "?";
}

std::unique_ptr<Stmt> Stmt::Clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->target = target;
  s->value = value ? value->Clone() : nullptr;
  s->condition = condition ? condition->Clone() : nullptr;
  s->loop_var = loop_var;
  s->range_begin = range_begin ? range_begin->Clone() : nullptr;
  s->range_end = range_end ? range_end->Clone() : nullptr;
  s->line = line;
  s->body.reserve(body.size());
  for (const auto& stmt : body) s->body.push_back(stmt->Clone());
  return s;
}

std::string Stmt::ToString(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (kind) {
    case StmtKind::kAssign:
      return pad + target + " = " + value->ToString() + ";\n";
    case StmtKind::kWhile: {
      std::string out = pad + "while (" + condition->ToString() + ") {\n";
      for (const auto& stmt : body) out += stmt->ToString(indent + 1);
      out += pad + "}\n";
      return out;
    }
    case StmtKind::kFor: {
      std::string out = pad + "for (" + loop_var + " in " +
                        range_begin->ToString() + ":" +
                        range_end->ToString() + ") {\n";
      for (const auto& stmt : body) out += stmt->ToString(indent + 1);
      out += pad + "}\n";
      return out;
    }
  }
  return "?";
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& stmt : statements) out += stmt->ToString();
  return out;
}

}  // namespace remac
