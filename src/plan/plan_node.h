#ifndef REMAC_PLAN_PLAN_NODE_H_
#define REMAC_PLAN_PLAN_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace remac {

/// Operators of the logical plan (HOP-level, mirroring SystemDS).
enum class PlanOp {
  kInput,      // named variable reference
  kConst,      // scalar literal
  kMatMul,     // matrix multiplication
  kTranspose,  // t(X)
  kAdd,        // element-wise + (scalar-broadcast when one side is 1x1)
  kSub,        // element-wise -
  kMul,        // element-wise * (scalar-broadcast)
  kDiv,        // element-wise / (scalar-broadcast)
  kMin,        // element-wise min (scalar-broadcast)
  kMax,        // element-wise max (scalar-broadcast)
  // Scalar-valued reductions / functions.
  kNcol,
  kNrow,
  kSum,
  kNorm,   // Frobenius norm
  kTrace,  // sum of the diagonal
  kSqrt,
  kAbs,
  // Element-wise unary matrix functions.
  kExp,
  kLog,
  // Structured reductions / constructors.
  kRowSums,  // (r x c) -> (r x 1)
  kColSums,  // (r x c) -> (1 x c)
  kDiag,     // square matrix -> diagonal column vector; vector -> diag matrix
  // Comparisons (scalar result 0/1; used in loop conditions).
  kLess,
  kGreater,
  kLessEq,
  kGreaterEq,
  kEqual,
  kNotEqual,
  // Generators.
  kReadData,  // read("name"): a dataset from the catalog
  kEye,       // eye(n)
  kZeros,     // zeros(r, c)
  kOnes,      // ones(r, c)
  kRand,      // rand(r, c): standard-normal dense matrix
  // Internal: a reference to a decomposed block (value = block index).
  // Never produced by the plan builder; used by chain decomposition.
  kBlockRef,
  // Internal: a fused region of elementwise ops carrying a post-order
  // FusedTape (`fused`); children are the region inputs in slot order.
  // Produced only by FuseElementwiseChains, after optimization.
  kFusedMap,
};

const char* PlanOpName(PlanOp op);

/// Inferred shape of a plan node. A scalar is 1 x 1 with is_scalar set;
/// 1 x 1 matrices (e.g., d^T A^T A d) are freely usable in scalar
/// positions.
struct Shape {
  int64_t rows = 1;
  int64_t cols = 1;
  bool is_scalar = false;

  bool IsOneByOne() const { return rows == 1 && cols == 1; }
  bool ScalarLike() const { return is_scalar || IsOneByOne(); }
  bool operator==(const Shape&) const = default;
};

/// Physical layout the cost model chose for a kMatMul node (stamped on
/// the optimized plan by AnnotateMultiplyLayouts so tooling can report
/// the 1D/2D decision; purely advisory metadata — execution re-derives
/// the same choice from actual statistics, and Equals ignores it).
enum class MultiplyLayout { kUnset, kLocal, kBmm1D, kCpmm1D, kSumma2D };

const char* MultiplyLayoutName(MultiplyLayout layout);

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

struct FusedTape;  // matrix/fused_tape.h

/// \brief A node of the logical plan tree.
///
/// Plans are trees (not DAGs): sharing is introduced later, by the
/// redundancy-elimination machinery, in the form of explicit temporary
/// assignments. Nodes are immutable by convention once built; rewrites
/// construct fresh nodes.
struct PlanNode {
  PlanOp op;
  std::string name;      // kInput / kReadData
  double value = 0.0;    // kConst
  std::vector<PlanNodePtr> children;
  Shape shape;
  /// True if every input reachable from this node is loop-constant
  /// (set by the LSE labeling pass, paper Section 3.3 step 1*).
  bool loop_constant = false;
  /// True if the node provably equals its own transpose.
  bool symmetric = false;
  /// Chosen physical layout for kMatMul nodes (see MultiplyLayout).
  MultiplyLayout layout = MultiplyLayout::kUnset;
  /// kFusedMap only: the post-order elementwise tape (immutable, shared
  /// by Clone).
  std::shared_ptr<const FusedTape> fused;

  /// Structural one-line rendering, e.g., "(H %*% t(A))".
  std::string ToString() const;

  /// Deep structural equality (names, values, ops, children).
  static bool Equals(const PlanNode& a, const PlanNode& b);

  /// Deep copy.
  PlanNodePtr Clone() const;
};

/// Node constructors (shapes must be filled by InferShapes afterwards
/// unless stated otherwise).
PlanNodePtr MakeInput(std::string name, Shape shape);
PlanNodePtr MakeConst(double value);
PlanNodePtr MakeUnary(PlanOp op, PlanNodePtr child);
PlanNodePtr MakeBinary(PlanOp op, PlanNodePtr lhs, PlanNodePtr rhs);

/// True for +, -, *, /, min, max (element-wise binary family).
bool IsElementwiseOp(PlanOp op);
/// True for the comparison family.
bool IsComparisonOp(PlanOp op);
/// True for generator nodes (read/eye/zeros/ones/rand).
bool IsGeneratorOp(PlanOp op);

/// Recomputes `shape` bottom-up. Fails on dimension mismatches.
/// Generator dimension arguments must be constants by this point.
Status InferShapes(PlanNode* node);

/// Counts nodes in the tree.
int64_t CountNodes(const PlanNode& node);

}  // namespace remac

#endif  // REMAC_PLAN_PLAN_NODE_H_
