#include "plan/fusion.h"

#include <map>
#include <utility>
#include <vector>

#include "matrix/fused_tape.h"
#include "obs/metrics.h"

namespace remac {

namespace {

/// Registry handles resolved once, process-wide.
struct FusionMetrics {
  Counter* regions =
      MetricsRegistry::Global().GetCounter("remac.fusion.regions");
  Counter* ops_fused =
      MetricsRegistry::Global().GetCounter("remac.fusion.ops_fused");
};

FusionMetrics& Metrics() {
  static FusionMetrics metrics;
  return metrics;
}

/// Maps a fusable PlanOp onto its tape opcode.
FusedOp ToFusedOp(PlanOp op) {
  switch (op) {
    case PlanOp::kAdd: return FusedOp::kAdd;
    case PlanOp::kSub: return FusedOp::kSub;
    case PlanOp::kMul: return FusedOp::kMul;
    case PlanOp::kDiv: return FusedOp::kDiv;
    case PlanOp::kMin: return FusedOp::kMin;
    case PlanOp::kMax: return FusedOp::kMax;
    case PlanOp::kExp: return FusedOp::kExp;
    case PlanOp::kLog: return FusedOp::kLog;
    default: return FusedOp::kAdd;  // unreachable for fusable nodes
  }
}

/// True when `node` can be an interior op of a fused region: an
/// element-wise binary or unary map producing a real matrix. Scalar-shaped
/// results stay on the executor's scalar paths.
bool FusableOp(const PlanNode& node) {
  if (node.shape.ScalarLike() || node.shape.rows <= 0 ||
      node.shape.cols <= 0) {
    return false;
  }
  switch (node.op) {
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMul:
    case PlanOp::kDiv:
    case PlanOp::kMin:
    case PlanOp::kMax:
      return node.children.size() == 2;
    case PlanOp::kExp:
    case PlanOp::kLog:
      return node.children.size() == 1;
    default:
      return false;
  }
}

/// True when `node` belongs to the region rooted at `root`: fusable and
/// exactly the region shape (broadcast guarantees this for non-ScalarLike
/// operands; the check is defensive).
bool InRegion(const PlanNode& node, const PlanNode& root) {
  return FusableOp(node) && node.shape.rows == root.shape.rows &&
         node.shape.cols == root.shape.cols;
}

class Fuser {
 public:
  explicit Fuser(FusionReport* report) : report_(report) {}

  /// Rewrites the tree rooted at `node`, sharing unchanged subtrees.
  PlanNodePtr Rewrite(const PlanNodePtr& node) {
    if (InRegion(*node, *node)) {
      // Count the region first; only fuse when it spans >= 2 ops (a lone
      // elementwise op gains nothing from the tape interpreter).
      int64_t ops = 0;
      CountOps(*node, *node, &ops);
      if (ops >= 2) return BuildRegion(node);
    }
    return RewriteChildren(node);
  }

 private:
  /// Shallow-copies `node` with rewritten children; returns the original
  /// pointer when nothing underneath changed.
  PlanNodePtr RewriteChildren(const PlanNodePtr& node) {
    std::vector<PlanNodePtr> children;
    children.reserve(node->children.size());
    bool changed = false;
    for (const auto& child : node->children) {
      PlanNodePtr rewritten = Rewrite(child);
      changed = changed || rewritten.get() != child.get();
      children.push_back(std::move(rewritten));
    }
    if (!changed) return node;
    auto copy = std::make_shared<PlanNode>();
    copy->op = node->op;
    copy->name = node->name;
    copy->value = node->value;
    copy->shape = node->shape;
    copy->loop_constant = node->loop_constant;
    copy->symmetric = node->symmetric;
    copy->layout = node->layout;
    copy->fused = node->fused;
    copy->children = std::move(children);
    return copy;
  }

  void CountOps(const PlanNode& node, const PlanNode& root, int64_t* ops) {
    ++*ops;
    for (const auto& child : node.children) {
      if (InRegion(*child, root)) CountOps(*child, root, ops);
    }
  }

  /// Collects region inputs in DFS first-occurrence order. Plans are
  /// trees, so pointers are unique and no dedup is wanted: every input
  /// occurrence gets its own slot.
  void CollectInputs(const PlanNodePtr& node, const PlanNode& root,
                     std::vector<PlanNodePtr>* inputs) {
    for (const auto& child : node->children) {
      if (InRegion(*child, root)) {
        CollectInputs(child, root, inputs);
      } else {
        inputs->push_back(child);
      }
    }
  }

  /// Emits tape steps post-order; returns the slot holding `node`'s value.
  int32_t Emit(const PlanNode& node, const PlanNode& root,
               const std::map<const PlanNode*, int32_t>& input_slot,
               FusedTape* tape) {
    auto it = input_slot.find(&node);
    if (it != input_slot.end()) return it->second;
    FusedStep step;
    step.op = ToFusedOp(node.op);
    step.lhs = Emit(*node.children[0], root, input_slot, tape);
    if (node.children.size() == 2) {
      step.rhs = Emit(*node.children[1], root, input_slot, tape);
    }
    tape->steps.push_back(step);
    return tape->num_inputs +
           static_cast<int32_t>(tape->steps.size()) - 1;
  }

  PlanNodePtr BuildRegion(const PlanNodePtr& root) {
    std::vector<PlanNodePtr> inputs;
    CollectInputs(root, *root, &inputs);
    auto tape = std::make_shared<FusedTape>();
    tape->rows = root->shape.rows;
    tape->cols = root->shape.cols;
    tape->num_inputs = static_cast<int32_t>(inputs.size());
    std::map<const PlanNode*, int32_t> input_slot;
    for (size_t i = 0; i < inputs.size(); ++i) {
      input_slot[inputs[i].get()] = static_cast<int32_t>(i);
      tape->input_scalar.push_back(
          inputs[i]->shape.ScalarLike() ? 1 : 0);
    }
    Emit(*root, *root, input_slot, tape.get());
    Metrics().regions->Add();
    Metrics().ops_fused->Add(static_cast<int64_t>(tape->steps.size()));
    if (report_ != nullptr) {
      ++report_->regions;
      report_->ops_fused += static_cast<int64_t>(tape->steps.size());
    }
    auto node = std::make_shared<PlanNode>();
    node->op = PlanOp::kFusedMap;
    node->shape = root->shape;
    node->loop_constant = root->loop_constant;
    node->fused = std::move(tape);
    node->children.reserve(inputs.size());
    // Nested regions inside the inputs (e.g. on the far side of a
    // multiply) fuse independently.
    for (const auto& input : inputs) node->children.push_back(Rewrite(input));
    return node;
  }

  FusionReport* report_;
};

void FuseStatements(std::vector<CompiledStmt>* statements, Fuser* fuser) {
  for (auto& stmt : *statements) {
    if (stmt.plan != nullptr) stmt.plan = fuser->Rewrite(stmt.plan);
    if (stmt.condition != nullptr) {
      stmt.condition = fuser->Rewrite(stmt.condition);
    }
    FuseStatements(&stmt.body, fuser);
  }
}

}  // namespace

PlanNodePtr FuseElementwiseTree(const PlanNodePtr& node,
                                FusionReport* report) {
  Metrics();  // resolve the counter family even when nothing fuses
  Fuser fuser(report);
  return fuser.Rewrite(node);
}

void FuseElementwiseChains(CompiledProgram* program, FusionReport* report) {
  Metrics();  // resolve the counter family even when nothing fuses
  Fuser fuser(report);
  FuseStatements(&program->statements, &fuser);
}

}  // namespace remac
