#ifndef REMAC_PLAN_CHAIN_H_
#define REMAC_PLAN_CHAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan_node.h"

namespace remac {

/// Separator between factor symbols in canonical window keys.
inline constexpr char kKeySeparator = '\x1f';

/// Joins factor symbols into a canonical window key.
std::string JoinKey(const std::vector<std::string>& symbols);

/// \brief One atom of a multiplication chain.
///
/// After transpose push-down an atom is an input, a dataset read, a
/// generator, or (rarely, when the expansion budget was hit) an opaque
/// non-chain subtree. The `transposed` flag carries the pushed-down
/// transpose; symmetric atoms never carry it (t(H) == H).
struct Factor {
  PlanNodePtr node;
  bool transposed = false;
  /// Canonical atom name without the transpose marker (loop variables
  /// additionally carry an "@<version>" suffix, appended by
  /// BuildSearchSpace, so windows reading different versions of the same
  /// variable never unify).
  std::string base_symbol;
  bool symmetric = false;
  bool loop_constant = false;
  /// Intra-iteration version of a loop-assigned variable leaf (number of
  /// assignments to it before the window's statement).
  int version = 0;
  /// Shape after applying `transposed`.
  Shape shape;

  /// base_symbol plus "'" when effectively transposed.
  std::string Symbol() const;
  /// Symbol of the transposed atom (used when reversing a window).
  std::string FlippedSymbol() const;
};

/// \brief A block: one matrix-multiplication chain (paper Section 3.2,
/// step 2). Length-1 blocks (a bare H) are legal; 1x1-result chains
/// (d^T A^T A d) are blocks too.
struct Block {
  std::vector<Factor> factors;
  Shape shape;
  /// Index of the statement/expression this block came from.
  int expr_index = 0;
  /// Offset of this block's first factor on the global coordinate axis
  /// (paper Figure 4); assigned by BuildCoordinates.
  int64_t coord_begin = 0;

  int64_t Length() const { return static_cast<int64_t>(factors.size()); }
  bool AllLoopConstant(size_t begin, size_t end) const;
  std::string ToString() const;
};

/// \brief An expression split into blocks plus the connecting skeleton.
///
/// The skeleton is the original tree with every chain region replaced by
/// a kBlockRef leaf (value = block index). Reassembling an executable
/// plan = substituting a parenthesization tree for every kBlockRef.
struct Decomposition {
  PlanNodePtr skeleton;
  std::vector<Block> blocks;
};

/// Decomposes a normalized (pushed-down, expanded) plan tree.
/// `expr_index` tags the produced blocks.
Result<Decomposition> DecomposeIntoBlocks(const PlanNodePtr& normalized_root,
                                          int expr_index = 0);

/// Canonical window key over factors [begin, end) of `block`:
/// the lexicographic minimum of the forward symbol string and the
/// reversed-and-transposed symbol string, so that a subexpression and its
/// transpose collide ((A^T A d)^T = d^T A^T A; paper Section 3.2 step 3).
std::string WindowKey(const Block& block, size_t begin, size_t end);

/// True if the canonical key of the window equals the forward rendering
/// (i.e., the window is stored in its canonical orientation).
bool WindowIsForward(const Block& block, size_t begin, size_t end);

/// Rebuilds the plan subtree computing factors [begin, end) of `block`
/// as a left-deep chain (used when no better order is chosen).
PlanNodePtr LeftDeepChain(const Block& block, size_t begin, size_t end);

/// The plan node of a single factor (atom plus its transpose).
PlanNodePtr FactorPlan(const Factor& factor);

}  // namespace remac

#endif  // REMAC_PLAN_CHAIN_H_
