#ifndef REMAC_PLAN_PLAN_BUILDER_H_
#define REMAC_PLAN_PLAN_BUILDER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"
#include "matrix/matrix.h"
#include "plan/plan_node.h"

namespace remac {

/// \brief Statistics of a named dataset, as the optimizer sees it before
/// execution: dimensions and sparsity (plus, optionally, the exact
/// per-row/per-column non-zero counts consumed by the MNC estimator).
struct MatrixStats {
  int64_t rows = 0;
  int64_t cols = 0;
  double sparsity = 1.0;
  std::vector<int64_t> row_counts;  // may be empty if sketches not built
  std::vector<int64_t> col_counts;
};

/// \brief Registry of datasets available to read("...").
///
/// Holds both the statistics (for the optimizer) and the actual matrix
/// values (for the executor). Statistics are derived from the value when
/// one is registered.
class DataCatalog {
 public:
  /// Registers a dataset with its value; derives stats and MNC counts.
  void Register(const std::string& name, Matrix value);

  /// Registers statistics only (optimizer-only usage, e.g., cost studies
  /// on paper-scale shapes that are never executed).
  void RegisterStats(const std::string& name, MatrixStats stats);

  bool Contains(const std::string& name) const;
  Result<MatrixStats> Stats(const std::string& name) const;
  Result<Matrix> Value(const std::string& name) const;

  /// Monotonic registration count of `name` (0 if never registered).
  /// Every Register/RegisterStats bumps it, so value caches keyed on the
  /// version can never serve a result computed from superseded data even
  /// when the new data lands in the same dimensions and sparsity bucket.
  int64_t Version(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  std::map<std::string, MatrixStats> stats_;
  std::map<std::string, Matrix> values_;
  std::map<std::string, int64_t> versions_;
};

/// One compiled statement: either an assignment of a plan tree to a
/// variable, or a loop.
struct CompiledStmt {
  enum class Kind { kAssign, kLoop };
  Kind kind = Kind::kAssign;

  // kAssign.
  std::string target;
  PlanNodePtr plan;
  /// True for optimizer-introduced temporaries (assigned immediately even
  /// inside barrier-commit loops).
  bool is_temp = false;

  // kLoop.
  PlanNodePtr condition;  // scalar-valued; null for unconditional for-loops
  std::vector<CompiledStmt> body;
  /// True when the loop body was emitted over start-of-iteration values
  /// (fully inlined outputs): non-temp assignments commit together at the
  /// end of each iteration.
  bool barrier_commit = false;
  /// Trip count when statically known (for-loops over constant ranges);
  /// -1 otherwise.
  int64_t static_trip_count = -1;
  std::string loop_var;  // for-loops: counter variable (empty for while)
  double loop_begin = 0;

  std::string ToString(int indent = 0) const;
};

/// A compiled program: the statement list with plan trees.
struct CompiledProgram {
  std::vector<CompiledStmt> statements;
  std::string ToString() const;
};

/// \brief Lowers a parsed script into plan trees with inferred shapes.
///
/// - resolves read("name") shapes against the catalog,
/// - folds ncol/nrow of known shapes into constants,
/// - rewrites unary minus into (-1) * x,
/// - tracks variable shapes through assignments (loop bodies are assumed
///   shape-stable, which holds for fixed-shape iterative algorithms).
Result<CompiledProgram> BuildPlans(const Program& program,
                                   const DataCatalog& catalog);

/// Convenience: parse + build in one step.
Result<CompiledProgram> CompileScript(std::string_view source,
                                      const DataCatalog& catalog);

}  // namespace remac

#endif  // REMAC_PLAN_PLAN_BUILDER_H_
