#include "plan/plan_dot.h"

#include "common/string_util.h"

namespace remac {

namespace {

/// Emits the subtree rooted at `node`; returns its DOT node id.
int EmitNode(const PlanNode& node, int* next_id, std::string* out) {
  const int id = (*next_id)++;
  std::string label;
  std::string shape = "ellipse";
  switch (node.op) {
    case PlanOp::kInput:
      label = node.name;
      shape = "box";
      break;
    case PlanOp::kReadData:
      label = "read(" + node.name + ")";
      shape = "box";
      break;
    case PlanOp::kConst:
      label = StringFormat("%g", node.value);
      shape = "plaintext";
      break;
    default:
      label = PlanOpName(node.op);
      break;
  }
  if (!node.shape.ScalarLike()) {
    label += StringFormat("\\n%lldx%lld",
                          static_cast<long long>(node.shape.rows),
                          static_cast<long long>(node.shape.cols));
  }
  *out += StringFormat("  n%d [label=\"%s\", shape=%s];\n", id, label.c_str(),
                       shape.c_str());
  for (const auto& child : node.children) {
    const int child_id = EmitNode(*child, next_id, out);
    *out += StringFormat("  n%d -> n%d;\n", id, child_id);
  }
  return id;
}

void EmitStatements(const std::vector<CompiledStmt>& statements, int* next_id,
                    int* next_cluster, std::string* out) {
  for (const auto& stmt : statements) {
    if (stmt.kind == CompiledStmt::Kind::kAssign) {
      const int cluster = (*next_cluster)++;
      *out += StringFormat("  subgraph cluster_%d {\n", cluster);
      *out += StringFormat("    label=\"%s =%s\";\n", stmt.target.c_str(),
                           stmt.is_temp ? " (temp)" : "");
      *out += "    style=rounded;\n";
      EmitNode(*stmt.plan, next_id, out);
      *out += "  }\n";
    } else {
      const int cluster = (*next_cluster)++;
      *out += StringFormat("  subgraph cluster_%d {\n", cluster);
      *out += "    label=\"loop\";\n    style=dashed;\n";
      EmitStatements(stmt.body, next_id, next_cluster, out);
      *out += "  }\n";
    }
  }
}

}  // namespace

std::string PlanToDot(const PlanNode& root, const std::string& title) {
  std::string out = "digraph plan {\n  rankdir=BT;\n";
  if (!title.empty()) {
    out += StringFormat("  label=\"%s\";\n", title.c_str());
  }
  int next_id = 0;
  EmitNode(root, &next_id, &out);
  out += "}\n";
  return out;
}

std::string ProgramToDot(const CompiledProgram& program) {
  std::string out = "digraph program {\n  rankdir=BT;\n";
  int next_id = 0;
  int next_cluster = 0;
  EmitStatements(program.statements, &next_id, &next_cluster, &out);
  out += "}\n";
  return out;
}

}  // namespace remac
