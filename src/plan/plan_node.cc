#include "plan/plan_node.h"

#include <cmath>

#include "common/string_util.h"
#include "matrix/fused_tape.h"

namespace remac {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kInput: return "input";
    case PlanOp::kConst: return "const";
    case PlanOp::kMatMul: return "%*%";
    case PlanOp::kTranspose: return "t";
    case PlanOp::kAdd: return "+";
    case PlanOp::kSub: return "-";
    case PlanOp::kMul: return "*";
    case PlanOp::kDiv: return "/";
    case PlanOp::kMin: return "min";
    case PlanOp::kMax: return "max";
    case PlanOp::kNcol: return "ncol";
    case PlanOp::kNrow: return "nrow";
    case PlanOp::kSum: return "sum";
    case PlanOp::kNorm: return "norm";
    case PlanOp::kTrace: return "trace";
    case PlanOp::kExp: return "exp";
    case PlanOp::kLog: return "log";
    case PlanOp::kRowSums: return "rowSums";
    case PlanOp::kColSums: return "colSums";
    case PlanOp::kDiag: return "diag";
    case PlanOp::kSqrt: return "sqrt";
    case PlanOp::kAbs: return "abs";
    case PlanOp::kLess: return "<";
    case PlanOp::kGreater: return ">";
    case PlanOp::kLessEq: return "<=";
    case PlanOp::kGreaterEq: return ">=";
    case PlanOp::kEqual: return "==";
    case PlanOp::kNotEqual: return "!=";
    case PlanOp::kReadData: return "read";
    case PlanOp::kEye: return "eye";
    case PlanOp::kZeros: return "zeros";
    case PlanOp::kOnes: return "ones";
    case PlanOp::kRand: return "rand";
    case PlanOp::kBlockRef: return "block";
    case PlanOp::kFusedMap: return "fused";
  }
  return "?";
}

std::string PlanNode::ToString() const {
  switch (op) {
    case PlanOp::kInput:
      return name;
    case PlanOp::kConst:
      return StringFormat("%g", value);
    case PlanOp::kReadData:
      return "read(\"" + name + "\")";
    case PlanOp::kBlockRef:
      return StringFormat("B%d", static_cast<int>(value));
    case PlanOp::kTranspose:
      return "t(" + children[0]->ToString() + ")";
    case PlanOp::kFusedMap: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const auto& child : children) args.push_back(child->ToString());
      return "fused{" + (fused != nullptr ? fused->ToString() : "") + "}(" +
             Join(args, ", ") + ")";
    }
    case PlanOp::kMatMul:
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMul:
    case PlanOp::kDiv:
    case PlanOp::kLess:
    case PlanOp::kGreater:
    case PlanOp::kLessEq:
    case PlanOp::kGreaterEq:
    case PlanOp::kEqual:
    case PlanOp::kNotEqual:
      return "(" + children[0]->ToString() + " " + PlanOpName(op) + " " +
             children[1]->ToString() + ")";
    default: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const auto& child : children) args.push_back(child->ToString());
      return std::string(PlanOpName(op)) + "(" + Join(args, ", ") + ")";
    }
  }
}

const char* MultiplyLayoutName(MultiplyLayout layout) {
  switch (layout) {
    case MultiplyLayout::kUnset:
      return "?";
    case MultiplyLayout::kLocal:
      return "local";
    case MultiplyLayout::kBmm1D:
      return "BMM/1D";
    case MultiplyLayout::kCpmm1D:
      return "CPMM/1D";
    case MultiplyLayout::kSumma2D:
      return "SUMMA/2D";
  }
  return "?";
}

bool PlanNode::Equals(const PlanNode& a, const PlanNode& b) {
  if (a.op != b.op || a.name != b.name ||
      a.children.size() != b.children.size()) {
    return false;
  }
  if (a.op == PlanOp::kConst && a.value != b.value) return false;
  if (a.op == PlanOp::kFusedMap) {
    if ((a.fused == nullptr) != (b.fused == nullptr)) return false;
    if (a.fused != nullptr && !(*a.fused == *b.fused)) return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!Equals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

PlanNodePtr PlanNode::Clone() const {
  auto node = std::make_shared<PlanNode>();
  node->op = op;
  node->name = name;
  node->value = value;
  node->shape = shape;
  node->loop_constant = loop_constant;
  node->symmetric = symmetric;
  node->layout = layout;
  node->fused = fused;  // immutable, shared
  node->children.reserve(children.size());
  for (const auto& child : children) node->children.push_back(child->Clone());
  return node;
}

PlanNodePtr MakeInput(std::string name, Shape shape) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanOp::kInput;
  node->name = std::move(name);
  node->shape = shape;
  return node;
}

PlanNodePtr MakeConst(double value) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanOp::kConst;
  node->value = value;
  node->shape = Shape{1, 1, true};
  node->loop_constant = true;
  node->symmetric = true;
  return node;
}

PlanNodePtr MakeUnary(PlanOp op, PlanNodePtr child) {
  auto node = std::make_shared<PlanNode>();
  node->op = op;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeBinary(PlanOp op, PlanNodePtr lhs, PlanNodePtr rhs) {
  auto node = std::make_shared<PlanNode>();
  node->op = op;
  node->children.push_back(std::move(lhs));
  node->children.push_back(std::move(rhs));
  return node;
}

bool IsElementwiseOp(PlanOp op) {
  return op == PlanOp::kAdd || op == PlanOp::kSub || op == PlanOp::kMul ||
         op == PlanOp::kDiv || op == PlanOp::kMin || op == PlanOp::kMax;
}

bool IsComparisonOp(PlanOp op) {
  return op == PlanOp::kLess || op == PlanOp::kGreater ||
         op == PlanOp::kLessEq || op == PlanOp::kGreaterEq ||
         op == PlanOp::kEqual || op == PlanOp::kNotEqual;
}

bool IsGeneratorOp(PlanOp op) {
  return op == PlanOp::kReadData || op == PlanOp::kEye ||
         op == PlanOp::kZeros || op == PlanOp::kOnes || op == PlanOp::kRand;
}

namespace {

Status ShapeErrorAt(const PlanNode& node, const std::string& what) {
  return Status::DimensionMismatch(what + " in " + node.ToString());
}

Result<int64_t> ConstDim(const PlanNode& node, size_t child) {
  if (child >= node.children.size() ||
      node.children[child]->op != PlanOp::kConst) {
    return Status::InvalidArgument(
        "generator dimensions must be constants by shape-inference time: " +
        node.ToString());
  }
  return static_cast<int64_t>(std::llround(node.children[child]->value));
}

}  // namespace

Status InferShapes(PlanNode* node) {
  for (auto& child : node->children) {
    REMAC_RETURN_NOT_OK(InferShapes(child.get()));
  }
  switch (node->op) {
    case PlanOp::kInput:
    case PlanOp::kConst:
    case PlanOp::kReadData:
    case PlanOp::kBlockRef:
      // Shapes assigned at construction (from the symbol table / catalog).
      return Status::OK();
    case PlanOp::kMatMul: {
      const Shape& l = node->children[0]->shape;
      const Shape& r = node->children[1]->shape;
      if (l.cols != r.rows) {
        return ShapeErrorAt(*node, StringFormat("inner dims %lld vs %lld",
                                                static_cast<long long>(l.cols),
                                                static_cast<long long>(r.rows)));
      }
      node->shape = Shape{l.rows, r.cols, false};
      return Status::OK();
    }
    case PlanOp::kTranspose: {
      const Shape& c = node->children[0]->shape;
      node->shape = Shape{c.cols, c.rows, c.is_scalar};
      return Status::OK();
    }
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMul:
    case PlanOp::kDiv:
    case PlanOp::kMin:
    case PlanOp::kMax: {
      const Shape& l = node->children[0]->shape;
      const Shape& r = node->children[1]->shape;
      if (l.ScalarLike() && r.ScalarLike()) {
        node->shape = Shape{1, 1, l.is_scalar && r.is_scalar};
      } else if (l.ScalarLike()) {
        node->shape = r;
        node->shape.is_scalar = false;
      } else if (r.ScalarLike()) {
        node->shape = l;
        node->shape.is_scalar = false;
      } else if (l.rows == r.rows && l.cols == r.cols) {
        node->shape = Shape{l.rows, l.cols, false};
      } else {
        return ShapeErrorAt(*node, "element-wise shape mismatch");
      }
      return Status::OK();
    }
    case PlanOp::kNcol:
    case PlanOp::kNrow:
    case PlanOp::kSum:
    case PlanOp::kNorm:
    case PlanOp::kTrace:
      node->shape = Shape{1, 1, true};
      return Status::OK();
    case PlanOp::kExp:
    case PlanOp::kLog:
      node->shape = node->children[0]->shape;
      node->shape.is_scalar = node->children[0]->shape.is_scalar;
      return Status::OK();
    case PlanOp::kRowSums:
      node->shape = Shape{node->children[0]->shape.rows, 1, false};
      return Status::OK();
    case PlanOp::kColSums:
      node->shape = Shape{1, node->children[0]->shape.cols, false};
      return Status::OK();
    case PlanOp::kDiag: {
      const Shape& c = node->children[0]->shape;
      if (c.cols == 1) {
        node->shape = Shape{c.rows, c.rows, false};  // vector -> diag matrix
      } else if (c.rows == c.cols) {
        node->shape = Shape{c.rows, 1, false};  // matrix -> diagonal vector
      } else {
        return ShapeErrorAt(*node, "diag of a non-square matrix");
      }
      return Status::OK();
    }
    case PlanOp::kSqrt:
    case PlanOp::kAbs: {
      node->shape = node->children[0]->shape;
      return Status::OK();
    }
    case PlanOp::kLess:
    case PlanOp::kGreater:
    case PlanOp::kLessEq:
    case PlanOp::kGreaterEq:
    case PlanOp::kEqual:
    case PlanOp::kNotEqual: {
      if (!node->children[0]->shape.ScalarLike() ||
          !node->children[1]->shape.ScalarLike()) {
        return ShapeErrorAt(*node, "comparison of non-scalars");
      }
      node->shape = Shape{1, 1, true};
      return Status::OK();
    }
    case PlanOp::kEye: {
      REMAC_ASSIGN_OR_RETURN(const int64_t n, ConstDim(*node, 0));
      node->shape = Shape{n, n, false};
      return Status::OK();
    }
    case PlanOp::kZeros:
    case PlanOp::kOnes:
    case PlanOp::kRand: {
      REMAC_ASSIGN_OR_RETURN(const int64_t r, ConstDim(*node, 0));
      REMAC_ASSIGN_OR_RETURN(const int64_t c, ConstDim(*node, 1));
      node->shape = Shape{r, c, false};
      return Status::OK();
    }
    case PlanOp::kFusedMap: {
      if (node->fused == nullptr) {
        return Status::Internal("kFusedMap node without a tape");
      }
      node->shape = Shape{node->fused->rows, node->fused->cols, false};
      return Status::OK();
    }
  }
  return Status::Internal("unhandled op in InferShapes");
}

int64_t CountNodes(const PlanNode& node) {
  int64_t count = 1;
  for (const auto& child : node.children) count += CountNodes(*child);
  return count;
}

}  // namespace remac
