#include "plan/plan_builder.h"

#include <cmath>

#include "common/string_util.h"
#include "lang/parser.h"

namespace remac {

void DataCatalog::Register(const std::string& name, Matrix value) {
  MatrixStats stats;
  stats.rows = value.rows();
  stats.cols = value.cols();
  stats.sparsity = value.Sparsity();
  const CsrMatrix csr = value.ToCsr();
  stats.row_counts = csr.RowCounts();
  stats.col_counts = csr.ColCounts();
  stats_[name] = std::move(stats);
  values_.insert_or_assign(name, std::move(value));
  ++versions_[name];
}

void DataCatalog::RegisterStats(const std::string& name, MatrixStats stats) {
  stats_[name] = std::move(stats);
  ++versions_[name];
}

int64_t DataCatalog::Version(const std::string& name) const {
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

bool DataCatalog::Contains(const std::string& name) const {
  return stats_.count(name) > 0;
}

Result<MatrixStats> DataCatalog::Stats(const std::string& name) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    return Status::NotFound("no dataset named '" + name + "' in catalog");
  }
  return it->second;
}

Result<Matrix> DataCatalog::Value(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return Status::NotFound("no value registered for dataset '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> DataCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, _] : stats_) names.push_back(name);
  return names;
}

std::string CompiledStmt::ToString(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (kind == Kind::kAssign) {
    return pad + target + " = " + plan->ToString() + ";\n";
  }
  std::string out =
      pad + (condition ? "while (" + condition->ToString() + ")"
                       : StringFormat("for (%s in %g:%g)", loop_var.c_str(),
                                      loop_begin,
                                      loop_begin + static_trip_count - 1)) +
      " {\n";
  for (const auto& stmt : body) out += stmt.ToString(indent + 1);
  out += pad + "}\n";
  return out;
}

std::string CompiledProgram::ToString() const {
  std::string out;
  for (const auto& stmt : statements) out += stmt.ToString();
  return out;
}

namespace {

/// Tracks variable shapes while lowering statements in order.
class Builder {
 public:
  explicit Builder(const DataCatalog& catalog) : catalog_(catalog) {}

  Result<CompiledProgram> Build(const Program& program) {
    CompiledProgram out;
    REMAC_RETURN_NOT_OK(BuildInto(program.statements, &out.statements));
    return out;
  }

 private:
  Status BuildInto(const std::vector<std::unique_ptr<Stmt>>& stmts,
                   std::vector<CompiledStmt>* out) {
    for (const auto& stmt : stmts) {
      switch (stmt->kind) {
        case StmtKind::kAssign: {
          auto plan = BuildExpr(*stmt->value);
          if (!plan.ok()) return plan.status();
          CompiledStmt cs;
          cs.kind = CompiledStmt::Kind::kAssign;
          cs.target = stmt->target;
          cs.plan = std::move(plan).value();
          shapes_[stmt->target] = cs.plan->shape;
          out->push_back(std::move(cs));
          break;
        }
        case StmtKind::kWhile: {
          CompiledStmt cs;
          cs.kind = CompiledStmt::Kind::kLoop;
          // Loop bodies may reference variables they assign (previous
          // iteration values); pre-scan assignments that already have
          // shapes from the preamble. Shapes are assumed stable across
          // iterations, so one body pass suffices.
          auto condition = BuildExpr(*stmt->condition);
          if (!condition.ok()) return condition.status();
          cs.condition = std::move(condition).value();
          REMAC_RETURN_NOT_OK(BuildInto(stmt->body, &cs.body));
          out->push_back(std::move(cs));
          break;
        }
        case StmtKind::kFor: {
          CompiledStmt cs;
          cs.kind = CompiledStmt::Kind::kLoop;
          cs.loop_var = stmt->loop_var;
          auto begin = BuildExpr(*stmt->range_begin);
          if (!begin.ok()) return begin.status();
          auto end = BuildExpr(*stmt->range_end);
          if (!end.ok()) return end.status();
          if (begin.value()->op != PlanOp::kConst ||
              end.value()->op != PlanOp::kConst) {
            return Status::Unsupported(
                "for-loop ranges must be constants");
          }
          cs.loop_begin = begin.value()->value;
          cs.static_trip_count = static_cast<int64_t>(
              std::llround(end.value()->value - begin.value()->value + 1));
          shapes_[stmt->loop_var] = Shape{1, 1, true};
          REMAC_RETURN_NOT_OK(BuildInto(stmt->body, &cs.body));
          out->push_back(std::move(cs));
          break;
        }
      }
    }
    return Status::OK();
  }

  Result<PlanNodePtr> BuildExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kNumber:
        return MakeConst(expr.number);
      case ExprKind::kString:
        return Status::ParseError(
            "string literal outside read(): \"" + expr.name + "\"");
      case ExprKind::kIdentifier: {
        auto it = shapes_.find(expr.name);
        if (it == shapes_.end()) {
          return Status::NotFound(StringFormat(
              "line %d: undefined variable '%s'", expr.line,
              expr.name.c_str()));
        }
        return MakeInput(expr.name, it->second);
      }
      case ExprKind::kUnaryMinus: {
        REMAC_ASSIGN_OR_RETURN(PlanNodePtr child, BuildExpr(*expr.children[0]));
        return Finish(MakeBinary(PlanOp::kMul, MakeConst(-1.0),
                                 std::move(child)));
      }
      case ExprKind::kBinary: {
        REMAC_ASSIGN_OR_RETURN(PlanNodePtr lhs, BuildExpr(*expr.children[0]));
        REMAC_ASSIGN_OR_RETURN(PlanNodePtr rhs, BuildExpr(*expr.children[1]));
        PlanOp op = PlanOp::kAdd;
        switch (expr.op) {
          case BinaryOp::kAdd: op = PlanOp::kAdd; break;
          case BinaryOp::kSub: op = PlanOp::kSub; break;
          case BinaryOp::kElemMul: op = PlanOp::kMul; break;
          case BinaryOp::kDiv: op = PlanOp::kDiv; break;
          case BinaryOp::kMatMul: op = PlanOp::kMatMul; break;
          case BinaryOp::kLess: op = PlanOp::kLess; break;
          case BinaryOp::kGreater: op = PlanOp::kGreater; break;
          case BinaryOp::kLessEq: op = PlanOp::kLessEq; break;
          case BinaryOp::kGreaterEq: op = PlanOp::kGreaterEq; break;
          case BinaryOp::kEqual: op = PlanOp::kEqual; break;
          case BinaryOp::kNotEqual: op = PlanOp::kNotEqual; break;
        }
        // Scalar %*% scalar and mat %*% scalar degenerate to '*'.
        if (op == PlanOp::kMatMul &&
            (lhs->shape.is_scalar || rhs->shape.is_scalar)) {
          op = PlanOp::kMul;
        }
        return Finish(MakeBinary(op, std::move(lhs), std::move(rhs)));
      }
      case ExprKind::kCall:
        return BuildCall(expr);
    }
    return Status::Internal("unhandled expr kind");
  }

  Result<PlanNodePtr> BuildCall(const Expr& expr) {
    auto arity = [&](size_t n) -> Status {
      if (expr.children.size() != n) {
        return Status::InvalidArgument(StringFormat(
            "line %d: %s expects %zu argument(s), got %zu", expr.line,
            expr.name.c_str(), n, expr.children.size()));
      }
      return Status::OK();
    };
    if (expr.name == "read") {
      REMAC_RETURN_NOT_OK(arity(1));
      if (expr.children[0]->kind != ExprKind::kString) {
        return Status::InvalidArgument("read() expects a string literal");
      }
      const std::string& dataset = expr.children[0]->name;
      REMAC_ASSIGN_OR_RETURN(const MatrixStats stats, catalog_.Stats(dataset));
      auto node = std::make_shared<PlanNode>();
      node->op = PlanOp::kReadData;
      node->name = dataset;
      node->shape = Shape{stats.rows, stats.cols, false};
      return node;
    }
    if (expr.name == "t") {
      REMAC_RETURN_NOT_OK(arity(1));
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr child, BuildExpr(*expr.children[0]));
      return Finish(MakeUnary(PlanOp::kTranspose, std::move(child)));
    }
    static const std::map<std::string, PlanOp> kUnary = {
        {"sum", PlanOp::kSum},      {"norm", PlanOp::kNorm},
        {"sqrt", PlanOp::kSqrt},    {"abs", PlanOp::kAbs},
        {"ncol", PlanOp::kNcol},    {"nrow", PlanOp::kNrow},
        {"trace", PlanOp::kTrace},  {"exp", PlanOp::kExp},
        {"log", PlanOp::kLog},      {"rowSums", PlanOp::kRowSums},
        {"colSums", PlanOp::kColSums}, {"diag", PlanOp::kDiag}};
    auto uit = kUnary.find(expr.name);
    if (uit != kUnary.end()) {
      REMAC_RETURN_NOT_OK(arity(1));
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr child, BuildExpr(*expr.children[0]));
      // Fold ncol/nrow of a known shape into a constant so generator
      // dimensions are static.
      if (uit->second == PlanOp::kNcol) {
        return MakeConst(static_cast<double>(child->shape.cols));
      }
      if (uit->second == PlanOp::kNrow) {
        return MakeConst(static_cast<double>(child->shape.rows));
      }
      return Finish(MakeUnary(uit->second, std::move(child)));
    }
    // Element-wise binary functions (scalar-broadcast like +/-/*//).
    static const std::map<std::string, PlanOp> kBinary = {
        {"min", PlanOp::kMin}, {"max", PlanOp::kMax}};
    auto bit = kBinary.find(expr.name);
    if (bit != kBinary.end()) {
      REMAC_RETURN_NOT_OK(arity(2));
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr lhs, BuildExpr(*expr.children[0]));
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr rhs, BuildExpr(*expr.children[1]));
      return Finish(MakeBinary(bit->second, std::move(lhs), std::move(rhs)));
    }
    static const std::map<std::string, PlanOp> kGenerators = {
        {"eye", PlanOp::kEye},
        {"zeros", PlanOp::kZeros},
        {"ones", PlanOp::kOnes},
        {"rand", PlanOp::kRand}};
    auto git = kGenerators.find(expr.name);
    if (git != kGenerators.end()) {
      REMAC_RETURN_NOT_OK(arity(git->second == PlanOp::kEye ? 1 : 2));
      auto node = std::make_shared<PlanNode>();
      node->op = git->second;
      for (const auto& arg : expr.children) {
        REMAC_ASSIGN_OR_RETURN(PlanNodePtr child, BuildExpr(*arg));
        node->children.push_back(std::move(child));
      }
      return Finish(std::move(node));
    }
    return Status::NotFound(StringFormat("line %d: unknown function '%s'",
                                         expr.line, expr.name.c_str()));
  }

  Result<PlanNodePtr> Finish(PlanNodePtr node) {
    REMAC_RETURN_NOT_OK(InferShapes(node.get()));
    return node;
  }

  const DataCatalog& catalog_;
  std::map<std::string, Shape> shapes_;
};

}  // namespace

Result<CompiledProgram> BuildPlans(const Program& program,
                                   const DataCatalog& catalog) {
  Builder builder(catalog);
  return builder.Build(program);
}

Result<CompiledProgram> CompileScript(std::string_view source,
                                      const DataCatalog& catalog) {
  auto program = ParseProgram(source);
  if (!program.ok()) return program.status();
  return BuildPlans(program.value(), catalog);
}

}  // namespace remac
