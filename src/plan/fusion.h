#ifndef REMAC_PLAN_FUSION_H_
#define REMAC_PLAN_FUSION_H_

#include <cstdint>

#include "plan/plan_builder.h"
#include "plan/plan_node.h"

namespace remac {

/// What FuseElementwiseChains did to one program.
struct FusionReport {
  int64_t regions = 0;    // kFusedMap nodes introduced
  int64_t ops_fused = 0;  // elementwise/unary ops absorbed into tapes
};

/// \brief Rewrites maximal same-shape elementwise regions into kFusedMap
/// nodes carrying a post-order FusedTape.
///
/// A region root is any matrix-shaped (non-ScalarLike) node whose op is
/// element-wise binary (+, -, *, /, min, max) or element-wise unary
/// (exp, log); it greedily absorbs every child that is itself such a node
/// with the same shape. Everything else — multiplies, transposes,
/// generators (including rand()), scalar-shaped subtrees, reads — is a
/// region input and stays a child of the kFusedMap node, in DFS
/// first-occurrence order. ScalarLike inputs become scalar-broadcast tape
/// slots. Regions of fewer than two ops are left untouched. Input
/// subtrees are processed recursively, so chains on both sides of a
/// multiply each fuse.
///
/// The pass is a pure tree rewrite on plan structure: it runs after
/// optimization (statement granularity already encodes the redundancy
/// machinery's sharing decisions, so a multi-consumer intermediate is a
/// separate statement and never absorbed). Unchanged subtrees are shared,
/// changed paths are rebuilt.
///
/// Bumps the remac.fusion.regions / remac.fusion.ops_fused counters and
/// reports the same numbers through `report` (may be null).
void FuseElementwiseChains(CompiledProgram* program,
                           FusionReport* report = nullptr);

/// Node-level entry point (used by tests and the candidate extraction in
/// the matcache): returns the rewritten tree, sharing unchanged subtrees.
PlanNodePtr FuseElementwiseTree(const PlanNodePtr& node,
                                FusionReport* report = nullptr);

}  // namespace remac

#endif  // REMAC_PLAN_FUSION_H_
