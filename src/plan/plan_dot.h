#ifndef REMAC_PLAN_PLAN_DOT_H_
#define REMAC_PLAN_PLAN_DOT_H_

#include <string>

#include "plan/plan_builder.h"
#include "plan/plan_node.h"

namespace remac {

/// Renders a plan tree as a Graphviz DOT digraph (one node per operator,
/// leaves labeled with variable/dataset names and shapes).
std::string PlanToDot(const PlanNode& root, const std::string& title = "");

/// Renders a whole compiled program: one cluster per statement, loops as
/// nested clusters. Feed to `dot -Tsvg` to inspect optimized programs.
std::string ProgramToDot(const CompiledProgram& program);

}  // namespace remac

#endif  // REMAC_PLAN_PLAN_DOT_H_
