#ifndef REMAC_PLAN_REWRITER_H_
#define REMAC_PLAN_REWRITER_H_

#include "plan/plan_node.h"

namespace remac {

/// \brief Pushes transpositions down to the leaves (paper Section 3.2,
/// step 1).
///
/// Applies t(t(X)) = X, t(XY) = t(Y)t(X), t(X op Y) = t(X) op t(Y) for the
/// element-wise family, and drops transposes of scalar-like nodes, until
/// kTranspose nodes appear only directly above inputs/generators/opaque
/// subtrees. Shapes are re-inferred on the result.
PlanNodePtr PushDownTransposes(const PlanNodePtr& node);

/// \brief Expands products over sums (distributive law) and pulls scalar
/// coefficients out of multiplication chains (paper Section 3.2, step 2
/// preparation).
///
/// (X + Y) %*% Z   ->  X %*% Z + Y %*% Z
/// (s * X) %*% Y   ->  s * (X %*% Y)
/// s * (X + Y)     ->  s * X + s * Y
///
/// Expansion stops (returning the tree unexpanded at that node) once the
/// additive term count would exceed `max_terms`, guarding against
/// exponential blowup on adversarial inputs.
PlanNodePtr ExpandDistributive(const PlanNodePtr& node, int max_terms = 64);

/// Folds constant scalar subtrees ((2 * 3) -> 6) and algebraic identities
/// (1 * X -> X, -1 * -1 * X -> X).
PlanNodePtr FoldConstants(const PlanNodePtr& node);

/// Convenience: push-down + fold + expand, re-inferring shapes.
PlanNodePtr NormalizeForSearch(const PlanNodePtr& node, int max_terms = 64);

}  // namespace remac

#endif  // REMAC_PLAN_REWRITER_H_
