#include "plan/chain.h"

#include <cassert>

#include "common/string_util.h"

namespace remac {

std::string Factor::Symbol() const {
  if (transposed && !symmetric) return base_symbol + "'";
  return base_symbol;
}

std::string Factor::FlippedSymbol() const {
  if (symmetric) return base_symbol;
  if (transposed) return base_symbol;  // flipping undoes the transpose
  return base_symbol + "'";
}

bool Block::AllLoopConstant(size_t begin, size_t end) const {
  for (size_t i = begin; i < end; ++i) {
    if (!factors[i].loop_constant) return false;
  }
  return begin < end;
}

std::string Block::ToString() const {
  std::vector<std::string> symbols;
  symbols.reserve(factors.size());
  for (const auto& f : factors) symbols.push_back(f.Symbol());
  return Join(symbols, " ");
}

namespace {

bool IsAtom(const PlanNode& node) {
  return node.op == PlanOp::kInput || IsGeneratorOp(node.op);
}

bool IsChainRegion(const PlanNode& node) {
  if (node.op == PlanOp::kMatMul) return true;
  if (node.op == PlanOp::kTranspose) return true;
  if (IsAtom(node) && !node.shape.ScalarLike()) return true;
  return false;
}

Factor MakeFactor(const PlanNodePtr& node, bool transposed) {
  Factor f;
  f.node = node;
  f.symmetric = node->symmetric;
  f.transposed = transposed && !node->symmetric;
  f.loop_constant = node->loop_constant;
  if (node->op == PlanOp::kInput) {
    f.base_symbol = node->name;
  } else if (node->op == PlanOp::kReadData) {
    f.base_symbol = "@" + node->name;
  } else {
    // Generator or opaque subtree: a stable structural rendering.
    f.base_symbol = node->ToString();
  }
  f.shape = node->shape;
  if (f.transposed) std::swap(f.shape.rows, f.shape.cols);
  return f;
}

/// Flattens a chain region into factors, applying pushed-down transposes.
void FlattenChain(const PlanNodePtr& node, bool transposed,
                  std::vector<Factor>* out) {
  if (node->op == PlanOp::kMatMul) {
    if (transposed) {
      // Should not occur after push-down, but stay correct if it does:
      // t(XY) = t(Y) t(X).
      FlattenChain(node->children[1], true, out);
      FlattenChain(node->children[0], true, out);
    } else {
      FlattenChain(node->children[0], false, out);
      FlattenChain(node->children[1], false, out);
    }
    return;
  }
  if (node->op == PlanOp::kTranspose) {
    FlattenChain(node->children[0], !transposed, out);
    return;
  }
  out->push_back(MakeFactor(node, transposed));
}

class Decomposer {
 public:
  explicit Decomposer(int expr_index) : expr_index_(expr_index) {}

  Result<PlanNodePtr> BuildSkeleton(const PlanNodePtr& node) {
    if (node->op == PlanOp::kConst) return node->Clone();
    if (node->op == PlanOp::kInput && node->shape.ScalarLike()) {
      return node->Clone();
    }
    if (IsChainRegion(*node)) {
      Block block;
      block.expr_index = expr_index_;
      FlattenChain(node, false, &block.factors);
      block.shape = node->shape;
      auto ref = std::make_shared<PlanNode>();
      ref->op = PlanOp::kBlockRef;
      ref->value = static_cast<double>(blocks_.size());
      ref->shape = node->shape;
      ref->loop_constant = node->loop_constant;
      ref->symmetric = node->symmetric;
      blocks_.push_back(std::move(block));
      return ref;
    }
    // Skeleton operator: recurse into children.
    auto out = std::make_shared<PlanNode>();
    out->op = node->op;
    out->name = node->name;
    out->value = node->value;
    out->shape = node->shape;
    out->loop_constant = node->loop_constant;
    out->symmetric = node->symmetric;
    out->children.reserve(node->children.size());
    for (const auto& child : node->children) {
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr sub, BuildSkeleton(child));
      out->children.push_back(std::move(sub));
    }
    return out;
  }

  std::vector<Block> TakeBlocks() { return std::move(blocks_); }

 private:
  int expr_index_;
  std::vector<Block> blocks_;
};

}  // namespace

Result<Decomposition> DecomposeIntoBlocks(const PlanNodePtr& normalized_root,
                                          int expr_index) {
  Decomposer decomposer(expr_index);
  REMAC_ASSIGN_OR_RETURN(PlanNodePtr skeleton,
                         decomposer.BuildSkeleton(normalized_root));
  Decomposition d;
  d.skeleton = std::move(skeleton);
  d.blocks = decomposer.TakeBlocks();
  return d;
}

std::string JoinKey(const std::vector<std::string>& symbols) {
  std::string out;
  for (const std::string& symbol : symbols) {
    if (!out.empty()) out += kKeySeparator;
    out += symbol;
  }
  return out;
}

std::string WindowKey(const Block& block, size_t begin, size_t end) {
  assert(begin < end && end <= block.factors.size());
  std::string forward;
  std::string reversed;
  for (size_t i = begin; i < end; ++i) {
    if (!forward.empty()) forward += kKeySeparator;
    forward += block.factors[i].Symbol();
  }
  for (size_t i = end; i-- > begin;) {
    if (!reversed.empty()) reversed += kKeySeparator;
    reversed += block.factors[i].FlippedSymbol();
  }
  return std::min(forward, reversed);
}

bool WindowIsForward(const Block& block, size_t begin, size_t end) {
  std::string forward;
  for (size_t i = begin; i < end; ++i) {
    if (!forward.empty()) forward += kKeySeparator;
    forward += block.factors[i].Symbol();
  }
  return WindowKey(block, begin, end) == forward;
}

PlanNodePtr FactorPlan(const Factor& factor) {
  PlanNodePtr base = factor.node->Clone();
  if (!factor.transposed) return base;
  auto t = MakeUnary(PlanOp::kTranspose, std::move(base));
  const Status st = InferShapes(t.get());
  assert(st.ok());
  (void)st;
  return t;
}

PlanNodePtr LeftDeepChain(const Block& block, size_t begin, size_t end) {
  assert(begin < end && end <= block.factors.size());
  PlanNodePtr acc = FactorPlan(block.factors[begin]);
  for (size_t i = begin + 1; i < end; ++i) {
    acc = MakeBinary(PlanOp::kMatMul, std::move(acc),
                     FactorPlan(block.factors[i]));
    const Status st = InferShapes(acc.get());
    assert(st.ok());
    (void)st;
  }
  return acc;
}

}  // namespace remac
