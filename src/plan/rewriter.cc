#include "plan/rewriter.h"

#include <cassert>
#include <cmath>

namespace remac {

namespace {

/// Counts additive terms a node would expand into (an upper-bound guide
/// for the expansion limit).
int64_t TermCount(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kAdd:
    case PlanOp::kSub:
      return TermCount(*node.children[0]) + TermCount(*node.children[1]);
    case PlanOp::kMatMul:
    case PlanOp::kMul:
      return TermCount(*node.children[0]) * TermCount(*node.children[1]);
    default:
      return 1;
  }
}

PlanNodePtr WithShape(PlanNodePtr node) {
  const Status st = InferShapes(node.get());
  assert(st.ok());
  (void)st;
  return node;
}

PlanNodePtr ApplyPushDown(const PlanNodePtr& node, bool pending) {
  switch (node->op) {
    case PlanOp::kTranspose:
      return ApplyPushDown(node->children[0], !pending);
    case PlanOp::kMatMul: {
      if (pending) {
        // t(XY) = t(Y) t(X).
        return WithShape(MakeBinary(PlanOp::kMatMul,
                                    ApplyPushDown(node->children[1], true),
                                    ApplyPushDown(node->children[0], true)));
      }
      return WithShape(MakeBinary(PlanOp::kMatMul,
                                  ApplyPushDown(node->children[0], false),
                                  ApplyPushDown(node->children[1], false)));
    }
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMul:
    case PlanOp::kDiv:
      return WithShape(MakeBinary(node->op,
                                  ApplyPushDown(node->children[0], pending),
                                  ApplyPushDown(node->children[1], pending)));
    case PlanOp::kSqrt:
    case PlanOp::kAbs:
    case PlanOp::kExp:
    case PlanOp::kLog:
      return WithShape(
          MakeUnary(node->op, ApplyPushDown(node->children[0], pending)));
    case PlanOp::kRowSums:
    case PlanOp::kColSums:
    case PlanOp::kDiag: {
      PlanNodePtr out = WithShape(
          MakeUnary(node->op, ApplyPushDown(node->children[0], false)));
      if (pending && !out->shape.ScalarLike()) {
        return WithShape(MakeUnary(PlanOp::kTranspose, std::move(out)));
      }
      return out;
    }
    case PlanOp::kSum:
    case PlanOp::kNorm:
    case PlanOp::kTrace:
      // Scalar-valued: a pending transpose is a no-op; the argument's own
      // transposes still push down (sum(t(X)) = sum(X), norm likewise).
      return WithShape(
          MakeUnary(node->op, ApplyPushDown(node->children[0], false)));
    case PlanOp::kLess:
    case PlanOp::kGreater:
    case PlanOp::kLessEq:
    case PlanOp::kGreaterEq:
    case PlanOp::kEqual:
    case PlanOp::kNotEqual:
      return WithShape(MakeBinary(node->op,
                                  ApplyPushDown(node->children[0], false),
                                  ApplyPushDown(node->children[1], false)));
    case PlanOp::kConst:
      return node->Clone();
    case PlanOp::kEye:
      return node->Clone();  // t(I) = I
    case PlanOp::kZeros:
    case PlanOp::kOnes: {
      PlanNodePtr out = node->Clone();
      if (pending && node->children.size() == 2) {
        std::swap(out->children[0], out->children[1]);
        return WithShape(std::move(out));
      }
      return out;
    }
    case PlanOp::kInput:
    case PlanOp::kReadData:
    case PlanOp::kRand:
    default: {
      PlanNodePtr out = node->Clone();
      if (pending && !node->shape.ScalarLike() && !node->symmetric) {
        return WithShape(MakeUnary(PlanOp::kTranspose, std::move(out)));
      }
      return out;
    }
  }
}

bool IsScalarLike(const PlanNode& node) { return node.shape.ScalarLike(); }

/// One rewrite step of the expansion; sets *changed when it fired.
PlanNodePtr ExpandStep(const PlanNodePtr& node, bool* changed, int max_terms);

PlanNodePtr ExpandChildren(const PlanNodePtr& node, bool* changed,
                           int max_terms) {
  PlanNodePtr out = std::make_shared<PlanNode>();
  out->op = node->op;
  out->name = node->name;
  out->value = node->value;
  out->shape = node->shape;
  out->children.reserve(node->children.size());
  for (const auto& child : node->children) {
    out->children.push_back(ExpandStep(child, changed, max_terms));
  }
  return WithShape(std::move(out));
}

PlanNodePtr ExpandStep(const PlanNodePtr& node, bool* changed, int max_terms) {
  PlanNodePtr n = ExpandChildren(node, changed, max_terms);
  if (n->op == PlanOp::kMatMul) {
    PlanNodePtr l = n->children[0];
    PlanNodePtr r = n->children[1];
    // Pull scalar coefficients out: (s * X) %*% Y -> s * (X %*% Y).
    if (l->op == PlanOp::kMul && IsScalarLike(*l->children[0])) {
      *changed = true;
      return WithShape(MakeBinary(
          PlanOp::kMul, l->children[0],
          WithShape(MakeBinary(PlanOp::kMatMul, l->children[1], r))));
    }
    if (l->op == PlanOp::kMul && IsScalarLike(*l->children[1])) {
      *changed = true;
      return WithShape(MakeBinary(
          PlanOp::kMul, l->children[1],
          WithShape(MakeBinary(PlanOp::kMatMul, l->children[0], r))));
    }
    if (r->op == PlanOp::kMul && IsScalarLike(*r->children[0])) {
      *changed = true;
      return WithShape(MakeBinary(
          PlanOp::kMul, r->children[0],
          WithShape(MakeBinary(PlanOp::kMatMul, l, r->children[1]))));
    }
    if (r->op == PlanOp::kMul && IsScalarLike(*r->children[1])) {
      *changed = true;
      return WithShape(MakeBinary(
          PlanOp::kMul, r->children[1],
          WithShape(MakeBinary(PlanOp::kMatMul, l, r->children[0]))));
    }
    // Distribute over sums, within the term budget.
    if ((l->op == PlanOp::kAdd || l->op == PlanOp::kSub) &&
        TermCount(*n) <= max_terms) {
      *changed = true;
      return WithShape(MakeBinary(
          l->op,
          WithShape(MakeBinary(PlanOp::kMatMul, l->children[0], r)),
          WithShape(MakeBinary(PlanOp::kMatMul, l->children[1], r))));
    }
    if ((r->op == PlanOp::kAdd || r->op == PlanOp::kSub) &&
        TermCount(*n) <= max_terms) {
      *changed = true;
      return WithShape(MakeBinary(
          r->op,
          WithShape(MakeBinary(PlanOp::kMatMul, l, r->children[0])),
          WithShape(MakeBinary(PlanOp::kMatMul, l, r->children[1]))));
    }
  }
  if (n->op == PlanOp::kMul) {
    PlanNodePtr l = n->children[0];
    PlanNodePtr r = n->children[1];
    // s * (X + Y) -> s * X + s * Y (scalar coefficient only; element-wise
    // matrix products stay put, they are block boundaries anyway).
    if (IsScalarLike(*l) && (r->op == PlanOp::kAdd || r->op == PlanOp::kSub) &&
        TermCount(*n) <= max_terms) {
      *changed = true;
      return WithShape(
          MakeBinary(r->op, WithShape(MakeBinary(PlanOp::kMul, l, r->children[0])),
                     WithShape(MakeBinary(PlanOp::kMul, l, r->children[1]))));
    }
    if (IsScalarLike(*r) && (l->op == PlanOp::kAdd || l->op == PlanOp::kSub) &&
        TermCount(*n) <= max_terms) {
      *changed = true;
      return WithShape(
          MakeBinary(l->op, WithShape(MakeBinary(PlanOp::kMul, l->children[0], r)),
                     WithShape(MakeBinary(PlanOp::kMul, l->children[1], r))));
    }
  }
  return n;
}

}  // namespace

PlanNodePtr PushDownTransposes(const PlanNodePtr& node) {
  return ApplyPushDown(node, false);
}

PlanNodePtr ExpandDistributive(const PlanNodePtr& node, int max_terms) {
  PlanNodePtr current = node->Clone();
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    current = ExpandStep(current, &changed, max_terms);
    if (!changed) break;
  }
  return current;
}

PlanNodePtr FoldConstants(const PlanNodePtr& node) {
  PlanNodePtr out = std::make_shared<PlanNode>();
  out->op = node->op;
  out->name = node->name;
  out->value = node->value;
  out->shape = node->shape;
  out->children.reserve(node->children.size());
  for (const auto& child : node->children) {
    out->children.push_back(FoldConstants(child));
  }
  auto is_const = [](const PlanNodePtr& n) { return n->op == PlanOp::kConst; };
  if (out->children.size() == 2 && is_const(out->children[0]) &&
      is_const(out->children[1])) {
    const double a = out->children[0]->value;
    const double b = out->children[1]->value;
    switch (out->op) {
      case PlanOp::kAdd: return MakeConst(a + b);
      case PlanOp::kSub: return MakeConst(a - b);
      case PlanOp::kMul: return MakeConst(a * b);
      case PlanOp::kDiv: return MakeConst(b == 0.0 ? 0.0 : a / b);
      default: break;
    }
  }
  if (out->op == PlanOp::kMul && out->children.size() == 2) {
    // 1 * X -> X.
    if (is_const(out->children[0]) && out->children[0]->value == 1.0) {
      return out->children[1];
    }
    if (is_const(out->children[1]) && out->children[1]->value == 1.0) {
      return out->children[0];
    }
    // (c1 * (c2 * X)) -> (c1*c2) * X.
    if (is_const(out->children[0]) && out->children[1]->op == PlanOp::kMul &&
        is_const(out->children[1]->children[0])) {
      const double c = out->children[0]->value *
                       out->children[1]->children[0]->value;
      if (c == 1.0) return out->children[1]->children[1];
      return WithShape(MakeBinary(PlanOp::kMul, MakeConst(c),
                                  out->children[1]->children[1]));
    }
  }
  if (out->op == PlanOp::kSqrt && !out->children.empty() &&
      is_const(out->children[0])) {
    return MakeConst(std::sqrt(out->children[0]->value));
  }
  if (out->op == PlanOp::kAbs && !out->children.empty() &&
      is_const(out->children[0])) {
    return MakeConst(std::fabs(out->children[0]->value));
  }
  return WithShape(std::move(out));
}

PlanNodePtr NormalizeForSearch(const PlanNodePtr& node, int max_terms) {
  PlanNodePtr out = PushDownTransposes(node);
  out = FoldConstants(out);
  out = ExpandDistributive(out, max_terms);
  out = FoldConstants(out);
  return out;
}

}  // namespace remac
