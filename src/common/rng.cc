#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace remac {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace remac
