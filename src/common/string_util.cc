#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace remac {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(double bytes) {
  const char* suffixes[] = {"B", "KB", "MB", "GB", "TB"};
  int idx = 0;
  while (bytes >= 1024.0 && idx < 4) {
    bytes /= 1024.0;
    ++idx;
  }
  return StringFormat("%.1f%s", bytes, suffixes[idx]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1.0) return StringFormat("%.1fms", seconds * 1e3);
  if (seconds < 120.0) return StringFormat("%.2fs", seconds);
  if (seconds < 7200.0) return StringFormat("%.1fmin", seconds / 60.0);
  return StringFormat("%.2fh", seconds / 3600.0);
}

}  // namespace remac
