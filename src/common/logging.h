#ifndef REMAC_COMMON_LOGGING_H_
#define REMAC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace remac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal leveled logger writing to stderr.
///
/// The global threshold defaults to kWarning so that library code stays
/// quiet in tests and benchmarks; applications may lower it.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  static void Log(LogLevel level, const std::string& message);
};

namespace internal_logging {

/// Stream-style helper: accumulates a message, emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define REMAC_LOG(level) \
  ::remac::internal_logging::LogMessage(::remac::LogLevel::level)

}  // namespace remac

#endif  // REMAC_COMMON_LOGGING_H_
