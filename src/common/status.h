#ifndef REMAC_COMMON_STATUS_H_
#define REMAC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace remac {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions across public API boundaries;
/// fallible operations return a Status (or a Result<T>) instead, following
/// the RocksDB / Arrow idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kDimensionMismatch,
  kNotFound,
  kUnsupported,
  kOutOfRange,
  kInternal,
  /// Transient resource exhaustion (a task ran out of retries, a worker
  /// is lost); callers may degrade to a slower-but-correct path.
  kUnavailable,
};

/// \brief Lightweight success-or-error value.
///
/// A default-constructed Status is OK and carries no message. Error
/// statuses carry a code and a human-readable message.
class Status {
 public:
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DimensionMismatch(std::string msg) {
    return Status(StatusCode::kDimensionMismatch, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// trips an assertion in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from an OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from the current function.
#define REMAC_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::remac::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, binding the value.
#define REMAC_ASSIGN_OR_RETURN(lhs, expr)         \
  auto REMAC_CONCAT_(res_, __LINE__) = (expr);    \
  if (!REMAC_CONCAT_(res_, __LINE__).ok())        \
    return REMAC_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(REMAC_CONCAT_(res_, __LINE__)).value()

#define REMAC_CONCAT_IMPL_(a, b) a##b
#define REMAC_CONCAT_(a, b) REMAC_CONCAT_IMPL_(a, b)

}  // namespace remac

#endif  // REMAC_COMMON_STATUS_H_
