#ifndef REMAC_COMMON_STRING_UTIL_H_
#define REMAC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace remac {

/// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` at every occurrence of `sep` (no empty-token suppression).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a byte count with an IEC suffix, e.g., "30.0GB".
std::string HumanBytes(double bytes);

/// Renders a duration in seconds adaptively (ms / s / min / h).
std::string HumanSeconds(double seconds);

}  // namespace remac

#endif  // REMAC_COMMON_STRING_UTIL_H_
