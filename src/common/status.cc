#include "common/status.h"

namespace remac {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDimensionMismatch:
      return "DimensionMismatch";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace remac
