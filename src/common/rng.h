#ifndef REMAC_COMMON_RNG_H_
#define REMAC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace remac {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Used instead of <random> engines so that dataset generation is
/// reproducible across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Samples from a Zipf distribution over {0, ..., n-1}.
///
/// P(k) is proportional to 1 / (k+1)^exponent. An exponent of 0 yields the
/// uniform distribution; larger exponents concentrate mass on small ranks.
/// Sampling uses a precomputed cumulative table with binary search, which
/// keeps generation exact (no rejection bias) at O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  uint64_t n_;
  double exponent_;
  std::vector<double> cdf_;
};

}  // namespace remac

#endif  // REMAC_COMMON_RNG_H_
