#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace remac {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Startup threshold: REMAC_LOG=debug|info|warn|error overrides the
/// default (kWarning keeps library code quiet in tests and benchmarks).
/// Unrecognized values fall back to the default with a warning.
int InitialLevel() {
  const char* env = std::getenv("REMAC_LOG");
  if (env == nullptr || env[0] == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  std::string value;
  for (const char* p = env; *p != '\0'; ++p) {
    value.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (value == "debug") return static_cast<int>(LogLevel::kDebug);
  if (value == "info") return static_cast<int>(LogLevel::kInfo);
  if (value == "warn" || value == "warning") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (value == "error") return static_cast<int>(LogLevel::kError);
  std::fprintf(stderr, "[remac WARN] unrecognized REMAC_LOG=%s (expected %s)\n",
               env, "debug|info|warn|error");
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int>& GlobalLevel() {
  static std::atomic<int> level{InitialLevel()};
  return level;
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  GlobalLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(GlobalLevel().load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < GlobalLevel().load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[remac %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace remac
