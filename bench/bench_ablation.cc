// Ablation microbenchmarks (google-benchmark): local kernels, the
// block-wise search, estimator propagation, chain DP, and block-size
// sensitivity — the design choices DESIGN.md calls out.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "algorithms/scripts.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/analysis.h"
#include "core/block_search.h"
#include "core/cost_graph.h"
#include "core/dp_prober.h"
#include "data/generators.h"
#include "matrix/kernels.h"
#include "plan/plan_builder.h"
#include "runtime/program_runner.h"
#include "sched/thread_pool.h"
#include "sparsity/estimator.h"

namespace remac {
namespace {

Matrix RandomDense(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextGaussian();
  return Matrix::WrapDense(std::move(m));
}

Matrix RandomSparse(int64_t rows, int64_t cols, double sp, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "bench";
  spec.rows = rows;
  spec.cols = cols;
  spec.sparsity = sp;
  spec.seed = seed;
  return GenerateMatrix(spec);
}

void BM_DenseGemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomDense(n, n, 1);
  const Matrix b = RandomDense(n, n, 2);
  for (auto _ : state) {
    auto c = Multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_DenseGemm)->Arg(128)->Arg(256)->Arg(512);

void BM_SparseDenseMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomSparse(n * 16, n, 0.01, 3);
  const Matrix b = RandomDense(n, 32, 4);
  for (auto _ : state) {
    auto c = Multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SparseDenseMul)->Arg(256)->Arg(1024);

void BM_SparseSparseMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  const Matrix a = RandomSparse(n, n, 0.01, 5);
  const Matrix b = RandomSparse(n, n, 0.01, 6);
  for (auto _ : state) {
    auto c = Multiply(a, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SparseSparseMul)->Arg(1024)->Arg(4096);

/// The full compile pipeline pieces on DFP.
struct PipelineFixture {
  DataCatalog catalog;
  CompiledProgram program;
  SearchSpace space;
  MncEstimator estimator;
  std::unique_ptr<CostModel> cost_model;
  VarStats vars;
  std::unique_ptr<CostGraph> graph;
  std::vector<EliminationOption> options;

  static PipelineFixture& Get() {
    static PipelineFixture* fixture = [] {
      auto* f = new PipelineFixture();
      DatasetSpec spec;
      spec.name = "abl";
      spec.rows = 5000;
      spec.cols = 64;
      spec.sparsity = 0.01;
      spec.seed = 11;
      (void)RegisterDataset(&f->catalog, spec);
      f->program =
          CompileScript(DfpScript("abl", 20), f->catalog).value();
      const LoopStructure loop = FindLoop(f->program);
      auto outputs = InlineLoopBody(loop.loop->body).value();
      f->space = BuildSearchSpace(outputs, loop.loop_assigned,
                                  InferSymmetricVars(loop))
                     .value();
      f->cost_model = std::make_unique<CostModel>(ClusterModel(),
                                                  &f->estimator, &f->catalog);
      f->vars = PropagateProgramStats(f->program, f->catalog, *f->cost_model)
                    .value();
      f->graph = std::make_unique<CostGraph>(&f->space, f->cost_model.get(),
                                             &f->vars, 20);
      (void)f->graph->Build();
      f->options = BlockWiseSearch(f->space, nullptr);
      return f;
    }();
    return *fixture;
  }
};

void BM_BlockWiseSearch(benchmark::State& state) {
  PipelineFixture& f = PipelineFixture::Get();
  for (auto _ : state) {
    SearchReport report;
    auto options = BlockWiseSearch(f.space, &report);
    benchmark::DoNotOptimize(options);
  }
}
BENCHMARK(BM_BlockWiseSearch);

void BM_CostGraphBuild(benchmark::State& state) {
  PipelineFixture& f = PipelineFixture::Get();
  for (auto _ : state) {
    CostGraph graph(&f.space, f.cost_model.get(), &f.vars, 20);
    benchmark::DoNotOptimize(graph.Build());
  }
}
BENCHMARK(BM_CostGraphBuild);

void BM_EvaluateCombination(benchmark::State& state) {
  PipelineFixture& f = PipelineFixture::Get();
  std::vector<const EliminationOption*> combo;
  for (size_t i = 0; i < f.options.size() && combo.size() < 3; ++i) {
    bool ok = true;
    for (auto* c : combo) ok = ok && !OptionsConflict(*c, f.options[i]);
    if (ok) combo.push_back(&f.options[i]);
  }
  for (auto _ : state) {
    auto cost = f.graph->Evaluate(combo);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_EvaluateCombination);

void BM_AdaptiveProbe(benchmark::State& state) {
  PipelineFixture& f = PipelineFixture::Get();
  for (auto _ : state) {
    ProbeReport report;
    auto chosen = AdaptiveProbe(*f.graph, f.options, &report);
    benchmark::DoNotOptimize(chosen);
  }
}
BENCHMARK(BM_AdaptiveProbe);

void BM_EstimatorMultiply(benchmark::State& state) {
  const Matrix a = RandomSparse(20000, 500, 0.005, 7);
  const MncEstimator mnc;
  const MetadataEstimator md;
  MatrixStats stats;
  stats.rows = a.rows();
  stats.cols = a.cols();
  stats.sparsity = a.Sparsity();
  stats.row_counts = a.ToCsr().RowCounts();
  stats.col_counts = a.ToCsr().ColCounts();
  const SparsityEstimator& est =
      state.range(0) == 0 ? static_cast<const SparsityEstimator&>(md)
                          : static_cast<const SparsityEstimator&>(mnc);
  const NodeStats sa = est.LeafStats("a", stats);
  const NodeStats sat = est.Transpose(sa);
  for (auto _ : state) {
    NodeStats product = est.Multiply(sat, sa);
    benchmark::DoNotOptimize(product);
  }
  state.SetLabel(state.range(0) == 0 ? "metadata" : "MNC");
}
BENCHMARK(BM_EstimatorMultiply)->Arg(0)->Arg(1);

/// Block-size sensitivity of the simulated BMM shuffle volume.
void BM_BlockSizeSweep(benchmark::State& state) {
  ClusterModel model;
  model.block_size = state.range(0);
  MatInfo a;
  a.rows = 60000;
  a.cols = 870;
  a.sparsity = 0.005;
  a.distributed = true;
  MatInfo b;
  b.rows = 870;
  b.cols = 870;
  b.sparsity = 1.0;
  b.distributed = false;
  for (auto _ : state) {
    OpCosting costing = CostMultiply(a, b, 1.0, model);
    benchmark::DoNotOptimize(costing);
  }
  OpCosting costing = CostMultiply(a, b, 1.0, model);
  state.SetLabel("shuffle=" + HumanBytes(costing.shuffle_bytes));
}
BENCHMARK(BM_BlockSizeSweep)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace remac

// Custom main: peel off the harness flags (--threads=N, --scheduler=...)
// before google-benchmark sees the remaining arguments.
int main(int argc, char** argv) {
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (remac::StartsWith(arg, "--threads=")) {
      char* end = nullptr;
      const long threads = std::strtol(arg.c_str() + 10, &end, 10);
      if (end == arg.c_str() + 10 || *end != '\0' || threads <= 0) {
        std::fprintf(stderr, "--threads expects a positive integer, got '%s'\n",
                     arg.c_str() + 10);
        return 2;
      }
      remac::SetKernelThreads(static_cast<int>(threads));
      remac::ThreadPool::SetGlobalThreads(static_cast<int>(threads));
    } else if (!remac::StartsWith(arg, "--scheduler=") && arg != "--json" &&
               arg != "--quick") {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
