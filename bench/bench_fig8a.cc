// Figure 8(a): compilation time to find CSE and LSE — SystemDS (explicit
// only), tree-wise search, block-wise search (ReMac), and SPORES, on DFP,
// BFGS, GD, and partial DFP. The paper's finding: block-wise adds only
// milliseconds over SystemDS, while tree-wise explodes on DFP/BFGS
// (>8 hours on the authors' machines; here it hits its node budget).

#include <cstdio>

#include "algorithms/scripts.h"
#include "bench/harness.h"

using namespace remac;
using namespace remac::bench;

namespace {

void Row(const char* algo, const std::string& script) {
  const bool spores_supported = std::string(algo) == "partial DFP";
  std::printf("%-12s", algo);
  // SystemDS: explicit CSE only (its compile includes no implicit search).
  {
    RunConfig config;
    config.optimizer = OptimizerKind::kSystemDs;
    auto m = CompileOnly(script, SharedCatalog(), config);
    std::printf(" %14s", m.ok() ? Fmt(m->compile_wall_seconds).c_str()
                                : "ERROR");
  }
  // Tree-wise search (budgeted; reports whether it was truncated).
  {
    RunConfig config;
    config.optimizer = OptimizerKind::kRemacNone;  // search cost only
    config.search = SearchMethod::kTreeWise;
    config.treewise_budget = 50000000;
    auto m = CompileOnly(script, SharedCatalog(), config);
    if (m.ok()) {
      const bool truncated = m->optimize.search.windows_visited < 0;
      std::printf(" %13s%s", Fmt(m->optimize.search.wall_seconds).c_str(),
                  truncated ? ">" : " ");
    } else {
      std::printf(" %14s", "ERROR");
    }
  }
  // Block-wise search (ReMac).
  {
    RunConfig config;
    config.optimizer = OptimizerKind::kRemacNone;  // search cost only
    auto m = CompileOnly(script, SharedCatalog(), config);
    std::printf(" %14s",
                m.ok() ? Fmt(m->optimize.search.wall_seconds).c_str()
                       : "ERROR");
  }
  // SPORES (sampled search; only supports the partial-DFP expression).
  if (spores_supported) {
    RunConfig config;
    config.optimizer = OptimizerKind::kSpores;
    auto m = CompileOnly(script, SharedCatalog(), config);
    std::printf(" %14s", m.ok() ? Fmt(m->compile_wall_seconds).c_str()
                                : "ERROR");
  } else {
    std::printf(" %14s", "n/s");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Figure 8(a)", "compilation time to find CSE and LSE");
  Status st = EnsureDataset("cri2", /*with_partial_dfp_inputs=*/true);
  if (!st.ok()) {
    std::printf("dataset error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%-12s %14s %14s %14s %14s\n", "algorithm", "SystemDS",
              "tree-wise", "block-wise", "SPORES");
  std::printf("(a trailing '>' marks a tree-wise run truncated by its node "
              "budget)\n");
  Row("DFP", DfpScript("cri2", 20));
  Row("BFGS", BfgsScript("cri2", 20));
  Row("GD", GdScript("cri2", 20));
  Row("partial DFP", PartialDfpScript("cri2"));
  std::printf(
      "\nExpected shape (paper): block-wise within ~0.1s of SystemDS;\n"
      "tree-wise orders of magnitude slower on the DFP/BFGS chains.\n");
  return 0;
}
