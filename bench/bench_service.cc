// Plan-service throughput benchmark: repeated-script workloads served
// from the fingerprinted plan cache.
//
//   bench_service [--quick] [--json] [--repeat=N] [--cache-size=N]
//
// Two measurements:
//   1. cold vs warm latency on the repeated-DFP workload (the paper's
//      optimizer-heavy script): the warm path must skip parse+optimize,
//      so warm latency is essentially pure execution;
//   2. cross-session intermediate reuse: distinct programs sharing one
//      wide Gram chain, with the materialized-intermediate cache off
//      (every session recomputes the chain) and on (computed once,
//      served to the rest). The reuse speedup is a hard >= 2x gate —
//      scripts/check.sh runs this benchmark and fails on regression.
//
// --json prints one machine-readable line per measurement. Open-loop
// latency/throughput sweeps (and BENCH_service.json) moved to
// bench_load, the load harness with Zipf-skewed arrivals.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algorithms/scripts.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "matrix/kernels.h"
#include "sched/thread_pool.h"
#include "service/plan_service.h"

namespace remac {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Options {
  bool quick = false;
  bool json = false;
  int repeat = 16;
  size_t cache_size = 64;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
      options.repeat = 8;
    } else if (arg == "--json") {
      options.json = true;
    } else if (StartsWith(arg, "--repeat=")) {
      options.repeat = std::atoi(arg.c_str() + 9);
    } else if (StartsWith(arg, "--cache-size=")) {
      options.cache_size = static_cast<size_t>(std::atoi(arg.c_str() + 13));
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (expected --quick, --json, "
                   "--repeat=N, --cache-size=N)\n",
                   arg.c_str());
      std::exit(2);
    }
    if (options.repeat <= 0 || options.cache_size == 0) {
      std::fprintf(stderr, "--repeat/--cache-size must be positive\n");
      std::exit(2);
    }
  }
  return options;
}

/// Request template: execute one real loop iteration while the optimizer
/// amortizes over the full horizon (the harness idiom — keeps wall time
/// per request bounded by execution, not by the simulated loop).
RunConfig ServiceConfig() {
  RunConfig config;
  config.max_iterations = 20;
  config.executed_iterations = 1;
  return config;
}

}  // namespace

int BenchServiceMain(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "svc";
  spec.rows = options.quick ? 300 : 600;
  spec.cols = 16;
  spec.sparsity = 0.3;
  spec.seed = 7;
  if (Status st = RegisterDataset(&catalog, spec); !st.ok()) {
    std::fprintf(stderr, "dataset error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("=== bench_service: plan-service throughput ===\n");

  // --- 1. cold vs warm, repeated DFP -------------------------------
  const std::string dfp = DfpScript("svc", 20);
  ServiceOptions service_options;
  service_options.cache_capacity = options.cache_size;
  double cold_seconds = 0.0;
  double warm_mean_seconds = 0.0;
  {
    PlanService service(&catalog, service_options);
    ServiceRequest request{dfp, ServiceConfig()};
    auto cold = service.Run(request);
    if (!cold.ok()) {
      std::fprintf(stderr, "error: %s\n", cold.status().ToString().c_str());
      return 1;
    }
    cold_seconds = cold->timing.total_seconds;
    double warm_total = 0.0;
    for (int k = 0; k < options.repeat; ++k) {
      auto warm = service.Run(request);
      if (!warm.ok() || !warm->cache_hit) {
        std::fprintf(stderr, "warm request %d missed the cache\n", k);
        return 1;
      }
      warm_total += warm->timing.total_seconds;
    }
    warm_mean_seconds = warm_total / options.repeat;
  }
  const double speedup =
      warm_mean_seconds > 0.0 ? cold_seconds / warm_mean_seconds : 0.0;
  std::printf("repeated-DFP: cold %s, warm mean %s over %d repeats "
              "(%.1fx speedup)\n",
              HumanSeconds(cold_seconds).c_str(),
              HumanSeconds(warm_mean_seconds).c_str(), options.repeat,
              speedup);
  if (options.json) {
    std::printf("{\"bench\": \"service\", \"phase\": \"cold-warm\", "
                "\"cold_seconds\": %.9g, \"warm_mean_seconds\": %.9g, "
                "\"warm_speedup\": %.3f, \"repeat\": %d}\n",
                cold_seconds, warm_mean_seconds, speedup, options.repeat);
  }

  // --- 2. cross-session intermediate reuse --------------------------
  // Each "session" is a distinct program (distinct plan-cache key)
  // sharing one wide Gram chain t(W) %*% W that dominates its runtime.
  // With the matcache off every session recomputes the chain; with it
  // on the first session computes and admits it, the rest are served.
  DatasetSpec wide;
  wide.name = "svcw";
  wide.rows = options.quick ? 1200 : 2000;
  wide.cols = options.quick ? 128 : 256;
  wide.sparsity = 0.6;  // dense regime: the Gram is pure GEMM
  wide.seed = 21;
  if (Status st = RegisterDataset(&catalog, wide); !st.ok()) {
    std::fprintf(stderr, "dataset error: %s\n", st.ToString().c_str());
    return 1;
  }
  constexpr int kSessions = 6;
  std::vector<std::string> sessions;
  for (int k = 0; k < kSessions; ++k) {
    sessions.push_back(
        "g = t(read(\"svcw\")) %*% read(\"svcw\");\n"
        "x = " + std::to_string(k + 1) + " * g;\n");
  }
  double no_reuse_wall = 0.0;
  double reuse_wall = 0.0;
  double hit_ratio = 0.0;
  double flops_saved = 0.0;
  for (const bool reuse : {false, true}) {
    ServiceOptions so = service_options;
    if (!reuse) so.mat_cache_bytes = 0;
    PlanService service(&catalog, so);
    const auto start = Clock::now();
    for (const std::string& script : sessions) {
      auto r = service.Run(ServiceRequest{script, ServiceConfig()});
      if (!r.ok()) {
        std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    const double wall = SecondsSince(start);
    const ServiceStats stats = service.stats();
    if (reuse) {
      reuse_wall = wall;
      hit_ratio = stats.matcache.probes > 0
                      ? static_cast<double>(stats.matcache.hits) /
                            static_cast<double>(stats.matcache.probes)
                      : 0.0;
      flops_saved = stats.matcache.flops_saved;
    } else {
      no_reuse_wall = wall;
    }
  }
  const double reuse_speedup =
      reuse_wall > 0.0 ? no_reuse_wall / reuse_wall : 0.0;
  std::printf("intermediate reuse: %d sessions, no-reuse %s, reuse %s "
              "(%.1fx speedup, hit ratio %.2f, %.3g FLOPs saved)\n",
              kSessions, HumanSeconds(no_reuse_wall).c_str(),
              HumanSeconds(reuse_wall).c_str(), reuse_speedup, hit_ratio,
              flops_saved);
  if (options.json) {
    std::printf("{\"bench\": \"service\", \"phase\": \"matcache\", "
                "\"sessions\": %d, \"no_reuse_wall_seconds\": %.9g, "
                "\"reuse_wall_seconds\": %.9g, \"reuse_speedup\": %.3f, "
                "\"hit_ratio\": %.4f, \"flops_saved\": %.9g}\n",
                kSessions, no_reuse_wall, reuse_wall, reuse_speedup,
                hit_ratio, flops_saved);
  }

  // The reuse gate: recomputing a shared chain in every session must be
  // at least twice as slow as serving it from the matcache, or the
  // redundancy-elimination story regressed.
  if (reuse_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: intermediate-reuse speedup %.2fx below the 2.0x "
                 "floor\n",
                 reuse_speedup);
    return 1;
  }
  return 0;
}

}  // namespace remac

int main(int argc, char** argv) {
  return remac::BenchServiceMain(argc, argv);
}
