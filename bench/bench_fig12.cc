// Figure 12: total-time breakdown (input partition / compilation /
// computation / transmission) of SystemDS vs ReMac for DFP on cri2 and on
// Zipf-skewed cri2-shaped datasets (exponents 0.0 .. 2.8). The paper's
// findings: transmission dominates SystemDS (~70%) and ReMac cuts it;
// the LSE of A^T A flips from detrimental to efficient as skew grows
// (the jump between zipf-1.4 and zipf-2.1).

#include <cstdio>
#include <vector>

#include "algorithms/scripts.h"
#include "bench/harness.h"

using namespace remac;
using namespace remac::bench;

namespace {

void Row(const char* system, OptimizerKind kind, const std::string& ds,
         int iterations) {
  RunConfig config;
  config.optimizer = kind;
  config.count_input_partition = true;
  auto m = MeasureScript(DfpScript(ds, iterations), config, iterations);
  if (!m.ok()) {
    std::printf("  %-9s ERROR %s\n", system, m.status().ToString().c_str());
    return;
  }
  const TimeBreakdown& b = m->breakdown;
  std::printf("  %-9s %10s %10s %10s %10s | total %10s\n", system,
              Fmt(b.input_partition_seconds).c_str(),
              Fmt(m->compile_wall_seconds).c_str(),
              Fmt(b.computation_seconds).c_str(),
              Fmt(b.transmission_seconds).c_str(),
              Fmt(b.TotalSeconds() - b.compilation_seconds +
                  m->compile_wall_seconds)
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Figure 12", "time breakdown for DFP on cri2 and skewed data");
  const int iterations = 100;
  std::vector<std::string> datasets = {"cri2"};
  for (double e : {0.0, 0.7, 1.4, 2.1, 2.8}) {
    datasets.push_back(StringFormat("zipf-%.1f", e));
  }
  std::printf("%-11s %10s %10s %10s %10s\n", "", "partition", "compile",
              "compute", "transmit");
  for (const std::string& ds : datasets) {
    if (!EnsureDataset(ds).ok()) continue;
    std::printf("%s:\n", ds.c_str());
    Row("SystemDS", OptimizerKind::kSystemDs, ds, iterations);
    Row("ReMac", OptimizerKind::kRemacAdaptive, ds, iterations);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper): transmission is SystemDS's bottleneck and\n"
      "ReMac reduces it; ReMac's plan changes with skew (largest relative\n"
      "transmission cuts at high Zipf exponents).\n");
  return 0;
}
