// Figure 11: comparison with alternative systems — SystemDS, pbdR
// (ScaLAPACK), SciDB, and ReMac — on the dense datasets cri1 and red1 for
// DFP, BFGS, GD. The paper's finding: SystemDS beats pbdR/SciDB thanks to
// its dynamic local/distributed switch; ReMac adds redundancy elimination
// on top for a further ~14x.

#include <cstdio>
#include <vector>

#include "algorithms/scripts.h"
#include "bench/harness.h"

using namespace remac;
using namespace remac::bench;

namespace {

struct Arm {
  const char* label;
  OptimizerKind optimizer;
  EngineKind engine;
};

constexpr Arm kArms[] = {
    {"SystemDS", OptimizerKind::kSystemDs, EngineKind::kSystemDsLike},
    {"pbdR", OptimizerKind::kAsWritten, EngineKind::kPbdR},
    {"SciDB", OptimizerKind::kAsWritten, EngineKind::kSciDb},
    {"ReMac", OptimizerKind::kRemacAdaptive, EngineKind::kSystemDsLike},
};

void Sweep(const char* algo, int iterations,
           std::string (*script)(const std::string&, int)) {
  std::printf("\n--- %s ---\n", algo);
  std::printf("%-8s", "dataset");
  for (const Arm& arm : kArms) std::printf(" %13s", arm.label);
  std::printf("\n");
  for (const std::string& ds : {std::string("cri1"), std::string("red1")}) {
    if (!EnsureDataset(ds).ok()) continue;
    std::printf("%-8s", ds.c_str());
    for (const Arm& arm : kArms) {
      RunConfig config;
      config.optimizer = arm.optimizer;
      config.engine = arm.engine;
      auto m = MeasureScript(script(ds, iterations), config, iterations);
      std::printf(" %13s",
                  m.ok() ? Fmt(m->elapsed_seconds).c_str() : "ERROR");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Figure 11", "alternative solutions on the dense datasets");
  const int iterations = 100;
  Sweep("DFP", iterations, &DfpScript);
  Sweep("BFGS", iterations, &BfgsScript);
  Sweep("GD", iterations, &GdScript);
  std::printf(
      "\nExpected shape (paper): SystemDS ~2.8x faster than pbdR/SciDB\n"
      "(local/distributed switch); ReMac fastest by a wide margin.\n");
  return 0;
}
