// 2D-vs-1D distribution comparison + regression gate (ISSUE 7).
//
// Runs a set of sparse/skewed programs twice — once with the 2D tiled
// subsystem enabled (--dist2d auto: the optimizer may pick SUMMA) and
// once forced to the 1D BMM/CPMM paths (--dist2d off) — against separate
// TransmissionLedgers. For every program it checks that the two runs
// produce bitwise-identical results (the 2D path must never change
// numerics, only placement) and reports total ledger bytes per mode.
// Writes BENCH_dist2d.json to the working directory and exits non-zero
// unless at least one program moves strictly fewer ledger bytes under
// 2D than under forced 1D, so scripts/check.sh fails if the SUMMA path
// stops paying for itself on redundancy-friendly inputs.
//
// This binary parses its own flags: --quick --json --threads=N.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "algorithms/scripts.h"
#include "bench/harness.h"
#include "cluster/transmission_ledger.h"
#include "common/string_util.h"
#include "runtime/program_runner.h"

using namespace remac;
using namespace remac::bench;

namespace {

struct ModeResult {
  double total_bytes = 0.0;
  double broadcast_bytes = 0.0;
  double shuffle_bytes = 0.0;
  double collection_bytes = 0.0;
  double seconds = 0.0;
  std::map<std::string, RtValue> env;
};

/// Optimizes and executes `script` under `mode`, booking into a private
/// ledger so the two modes never share accumulators.
Result<ModeResult> RunMode(const std::string& script, Dist2DMode mode,
                           int iterations) {
  RunConfig config;
  config.cluster.dist2d = mode;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = iterations;
  config.executed_iterations = iterations;
  REMAC_ASSIGN_OR_RETURN(const CompiledProgram compiled,
                         CompileScript(script, SharedCatalog()));
  REMAC_ASSIGN_OR_RETURN(
      const CompiledProgram optimized,
      OptimizeCompiled(compiled, SharedCatalog(), config, nullptr));
  TransmissionLedger ledger(config.cluster);
  RunReport report;
  REMAC_RETURN_NOT_OK(ExecuteCompiled(optimized, SharedCatalog(), config,
                                      &ledger, &report));
  ModeResult result;
  result.total_bytes = ledger.TotalBytes();
  result.broadcast_bytes = ledger.BytesFor(TransmissionPrimitive::kBroadcast);
  result.shuffle_bytes = ledger.BytesFor(TransmissionPrimitive::kShuffle);
  result.collection_bytes =
      ledger.BytesFor(TransmissionPrimitive::kCollection);
  result.seconds = ledger.Breakdown().computation_seconds +
                   ledger.Breakdown().transmission_seconds;
  result.env = report.env;
  return result;
}

/// Bitwise equality of the two final environments: every variable, every
/// element (exact double ==, no tolerance — the 2D path computes the
/// same local product, so any drift is a bug).
bool BitwiseEqual(const std::map<std::string, RtValue>& a,
                  const std::map<std::string, RtValue>& b,
                  std::string* diff) {
  if (a.size() != b.size()) {
    *diff = "environment sizes differ";
    return false;
  }
  for (const auto& [name, lhs] : a) {
    auto it = b.find(name);
    if (it == b.end()) {
      *diff = "missing variable " + name;
      return false;
    }
    const RtValue& rhs = it->second;
    if (lhs.is_scalar != rhs.is_scalar) {
      *diff = "placement kind differs for " + name;
      return false;
    }
    if (lhs.is_scalar) {
      if (lhs.scalar != rhs.scalar) {
        *diff = "scalar " + name + " differs";
        return false;
      }
      continue;
    }
    const Matrix& lm = lhs.matrix;
    const Matrix& rm = it->second.matrix;
    if (lm.rows() != rm.rows() || lm.cols() != rm.cols()) {
      *diff = "shape of " + name + " differs";
      return false;
    }
    for (int64_t r = 0; r < lm.rows(); ++r) {
      for (int64_t c = 0; c < lm.cols(); ++c) {
        if (lm.At(r, c) != rm.At(r, c)) {
          *diff = StringFormat("%s[%lld,%lld] differs", name.c_str(),
                               static_cast<long long>(r),
                               static_cast<long long>(c));
          return false;
        }
      }
    }
  }
  return true;
}

struct ProgramRow {
  std::string label;
  double bytes_1d = 0.0;
  double bytes_2d = 0.0;
  double seconds_1d = 0.0;
  double seconds_2d = 0.0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = ParseBenchArgs(argc, argv);
  Banner("BENCH dist2d", "2D tiled SUMMA vs 1D BMM/CPMM distribution");

  struct ProgramSpec {
    const char* label;
    const char* dataset;
    std::string script;
  };
  // Gram matrices over skewed (zipf) sparse datasets: both operands are
  // large enough to live distributed, so the 1D chooser lands on CPMM
  // and the 2D subsystem competes on its home turf. The zipf skew
  // leaves entire tile rows/columns empty, which is exactly the
  // redundancy the annotated tile grids are built to skip.
  std::vector<ProgramSpec> specs;
  const char* gram = R"(
X = read("%s");
G = t(X) %%*%% X;
s = sum(G);
)";
  specs.push_back({"gram-zipf1.2", "zipf-1.2",
                   StringFormat(gram, "zipf-1.2")});
  specs.push_back({"gram-zipf1.6", "zipf-1.6",
                   StringFormat(gram, "zipf-1.6")});
  if (!options.quick) {
    specs.push_back({"gd-zipf1.4", "zipf-1.4", GdScript("zipf-1.4", 2)});
  }

  std::vector<ProgramRow> rows;
  bool all_identical = true;
  int wins = 0;
  std::printf("%-16s %14s %14s %9s %10s\n", "program", "1D bytes",
              "2D bytes", "ratio", "identical");
  for (const ProgramSpec& spec : specs) {
    if (Status st = EnsureDataset(spec.dataset); !st.ok()) {
      std::fprintf(stderr, "dataset %s: %s\n", spec.dataset,
                   st.ToString().c_str());
      return 1;
    }
    const int iterations = 2;
    auto one_d = RunMode(spec.script, Dist2DMode::kOff, iterations);
    auto two_d = RunMode(spec.script, Dist2DMode::kAuto, iterations);
    if (!one_d.ok() || !two_d.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.label,
                   (!one_d.ok() ? one_d.status() : two_d.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    ProgramRow row;
    row.label = spec.label;
    row.bytes_1d = one_d->total_bytes;
    row.bytes_2d = two_d->total_bytes;
    row.seconds_1d = one_d->seconds;
    row.seconds_2d = two_d->seconds;
    std::string diff;
    row.identical = BitwiseEqual(one_d->env, two_d->env, &diff);
    if (!row.identical) {
      std::fprintf(stderr, "%s: results diverge: %s\n", spec.label,
                   diff.c_str());
      all_identical = false;
    }
    if (row.bytes_2d < row.bytes_1d) ++wins;
    std::printf("%-16s %14.4g %14.4g %9.3f %10s\n", row.label.c_str(),
                row.bytes_1d, row.bytes_2d,
                row.bytes_1d > 0.0 ? row.bytes_2d / row.bytes_1d : 1.0,
                row.identical ? "yes" : "NO");
    rows.push_back(row);
  }

  FILE* out = std::fopen("BENCH_dist2d.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_dist2d.json\n");
    return 1;
  }
  std::fprintf(out, "{\"programs\": [");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ProgramRow& row = rows[i];
    std::fprintf(out,
                 "%s{\"label\": \"%s\", \"bytes_1d\": %.9g, "
                 "\"bytes_2d\": %.9g, \"seconds_1d\": %.9g, "
                 "\"seconds_2d\": %.9g, \"identical\": %s}",
                 i == 0 ? "" : ", ", row.label.c_str(), row.bytes_1d,
                 row.bytes_2d, row.seconds_1d, row.seconds_2d,
                 row.identical ? "true" : "false");
  }
  std::fprintf(out, "], \"wins_2d\": %d, \"all_identical\": %s}\n", wins,
               all_identical ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_dist2d.json\n");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: 2D and 1D runs must be bitwise-identical\n");
    return 1;
  }
  if (wins == 0) {
    std::fprintf(stderr,
                 "FAIL: 2D moved >= as many ledger bytes as 1D on every "
                 "program (expected at least one win)\n");
    return 1;
  }
  std::printf("PASS: 2D beats 1D on ledger bytes for %d/%zu programs\n",
              wins, rows.size());
  return 0;
}
