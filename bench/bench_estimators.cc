// Estimator-accuracy ablation (supports the paper's Section 4.2 estimator
// survey): relative error of the estimated sparsity of A^T A as skew
// grows, for the metadata, sampling, and MNC estimators against the exact
// pattern oracle — plus the wall time each estimator spends per estimate.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "matrix/kernels.h"
#include "sparsity/estimator.h"

using namespace remac;
using namespace remac::bench;

namespace {

struct Row {
  double truth = 0.0;
  double estimate = 0.0;
  double micros = 0.0;
};

Row Estimate(const SparsityEstimator& estimator, const MatrixStats& stats,
             double truth) {
  Row row;
  row.truth = truth;
  const auto start = std::chrono::steady_clock::now();
  const NodeStats leaf = estimator.LeafStats("a", stats);
  const NodeStats product =
      estimator.Multiply(estimator.Transpose(leaf), leaf);
  row.micros = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  row.estimate = product.sparsity;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Estimator ablation",
         "sp(A^T A) estimation error and cost vs skew (Section 4.2)");
  std::printf("%-10s %10s |", "dataset", "true sp");
  for (const char* name : {"MD", "Sample", "MNC"}) {
    std::printf(" %8s-err %8s-us |", name, name);
  }
  std::printf("\n");
  const MetadataEstimator md;
  const SamplingEstimator sampling(64);
  const MncEstimator mnc;
  for (double e : {0.0, 0.7, 1.4, 2.1, 2.8}) {
    const std::string name = StringFormat("zipf-%.1f", e);
    if (!EnsureDataset(name).ok()) continue;
    const Matrix a = SharedCatalog().Value(name).value();
    const MatrixStats stats = SharedCatalog().Stats(name).value();
    const Matrix at = Transpose(a);
    const double truth =
        static_cast<double>(MultiplyNnzExact(at, a).value()) /
        (static_cast<double>(a.cols()) * static_cast<double>(a.cols()));
    std::printf("%-10s %10.4f |", name.c_str(), truth);
    for (const SparsityEstimator* estimator :
         {static_cast<const SparsityEstimator*>(&md),
          static_cast<const SparsityEstimator*>(&sampling),
          static_cast<const SparsityEstimator*>(&mnc)}) {
      const Row row = Estimate(*estimator, stats, truth);
      std::printf(" %12.4f %11.1f |", std::fabs(row.estimate - truth),
                  row.micros);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: MD error grows with skew (uniform assumption);\n"
      "MNC stays accurate at higher estimation cost; Sampling sits in\n"
      "between. This is why ReMac defaults to MNC (paper Section 6.3.2).\n");
  return 0;
}
