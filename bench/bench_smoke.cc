// Smoke benchmark: one small DFP measurement, primarily for the
// `bench-smoke` gate in scripts/check.sh. Run with --json and the final
// line carries the full metrics-registry block, which
// tools/validate_metrics.py checks against tools/metrics_manifest.txt.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/scripts.h"
#include "bench/harness.h"
#include "service/plan_service.h"

using namespace remac;
using namespace remac::bench;

namespace {

/// Exact cell-wise equality across storage formats (no tolerance).
bool SameValues(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (a.At(r, c) != b.At(r, c)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Smoke", "one quick DFP measurement to exercise the telemetry path");
  DatasetSpec spec;
  spec.name = "smoke";
  spec.rows = 2000;
  spec.cols = 64;
  spec.sparsity = 0.2;
  spec.zipf_rows = 1.1;
  spec.zipf_cols = 1.1;
  spec.seed = 7;
  if (!SharedCatalog().Contains("smoke")) {
    const Status st = RegisterDataset(&SharedCatalog(), spec);
    if (!st.ok()) {
      std::printf("dataset error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const int iterations = 10;
  const std::string script = DfpScript("smoke", iterations);
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  auto m = MeasureScript(script, config, iterations, "smoke-dfp-adaptive");
  if (!m.ok()) {
    std::printf("ERROR %s\n", m.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s %12s %12s\n", "dfp (adaptive)",
              Fmt(m->execution_seconds).c_str(),
              Fmt(m->elapsed_seconds).c_str());

  // Chaos pass: one seeded fault-injected task-graph run, so the
  // remac.fault.* / remac.retry.* metric set registers and the manifest
  // check covers it.
  RunConfig chaos = config;
  chaos.scheduler = SchedulerKind::kTaskGraph;
  chaos.faults = FaultPlan::Chaos(17);
  chaos.executed_iterations = 1;
  auto c = RunScript(script, SharedCatalog(), chaos);
  if (!c.ok()) {
    std::printf("ERROR chaos pass: %s\n", c.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s faults=%lld retries=%lld wasted=%s\n", "dfp (chaos)",
              static_cast<long long>(c->schedule.faults_injected),
              static_cast<long long>(c->schedule.retries),
              Fmt(c->schedule.wasted_seconds).c_str());

  // Serving pass: two requests through a PlanService so the plan-cache
  // (remac.plancache.*) and materialized-intermediate (remac.matcache.*)
  // metric families register and the manifest check covers them. The
  // second request must hit both caches.
  {
    PlanService service(&SharedCatalog());
    const std::string gram =
        "g = t(read(\"smoke\")) %*% read(\"smoke\");\n";
    for (int k = 0; k < 2; ++k) {
      auto r = service.Run({gram, config});
      if (!r.ok()) {
        std::printf("ERROR serve pass: %s\n", r.status().ToString().c_str());
        return 1;
      }
      if (k == 1 && (!r->cache_hit || r->matcache.hits < 1)) {
        std::printf("ERROR serve pass: warm request missed "
                    "(plan hit=%d, intermediate hits=%lld)\n",
                    r->cache_hit ? 1 : 0,
                    static_cast<long long>(r->matcache.hits));
        return 1;
      }
    }
    const ServiceStats stats = service.stats();
    std::printf("%-22s plan hits=%lld intermediate hits=%lld "
                "resident=%lld B\n",
                "gram (served)", static_cast<long long>(stats.cache.hits),
                static_cast<long long>(stats.matcache.hits),
                static_cast<long long>(stats.matcache.resident_bytes));
  }

  // Fusion equivalence pass: every benchmark algorithm must produce
  // exactly the same values with elementwise fusion on and off
  // (RunConfig::fuse_elementwise) — fusion is a pure perf rewrite. Also
  // asserts the fused runs actually avoided interior materializations,
  // so a silently never-firing pass fails the gate too.
  {
    Counter* bytes_avoided =
        MetricsRegistry::Global().GetCounter("remac.fusion.bytes_avoided");
    const int64_t avoided_before = bytes_avoided->Value();
    const std::vector<std::pair<std::string, std::string>> programs = {
        {"gd", GdScript("smoke", 3)},
        {"dfp", DfpScript("smoke", 3)},
        {"bfgs", BfgsScript("smoke", 3)},
        {"gnmf", GnmfScript("smoke", 8, 3)},
        {"logistic", LogisticRegressionScript("smoke", 3)},
        {"ridge", RidgeRegressionScript("smoke", 3)},
    };
    for (const auto& [name, source] : programs) {
      RunConfig fused = config;
      fused.executed_iterations = 1;
      fused.max_iterations = 3;
      RunConfig unfused = fused;
      unfused.fuse_elementwise = false;
      auto with = RunScript(source, SharedCatalog(), fused);
      auto without = RunScript(source, SharedCatalog(), unfused);
      if (!with.ok() || !without.ok()) {
        std::printf("ERROR fusion pass (%s): %s\n", name.c_str(),
                    (!with.ok() ? with : without).status().ToString().c_str());
        return 1;
      }
      for (const auto& [var, value] : with->env) {
        if (!SameValues(value.AsMatrix(),
                        without->env.at(var).AsMatrix())) {
          std::printf(
              "ERROR fusion pass: %s variable %s differs fused vs unfused\n",
              name.c_str(), var.c_str());
          return 1;
        }
      }
    }
    const int64_t avoided = bytes_avoided->Value() - avoided_before;
    if (avoided <= 0) {
      std::printf("ERROR fusion pass: no interior bytes avoided\n");
      return 1;
    }
    std::printf("%-22s programs=%zu bytes_avoided=%lld\n", "fusion (on==off)",
                programs.size(), static_cast<long long>(avoided));
  }
  return 0;
}
