// Smoke benchmark: one small DFP measurement, primarily for the
// `bench-smoke` gate in scripts/check.sh. Run with --json and the final
// line carries the full metrics-registry block, which
// tools/validate_metrics.py checks against tools/metrics_manifest.txt.

#include <cstdio>
#include <string>

#include "algorithms/scripts.h"
#include "bench/harness.h"
#include "service/plan_service.h"

using namespace remac;
using namespace remac::bench;

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Smoke", "one quick DFP measurement to exercise the telemetry path");
  DatasetSpec spec;
  spec.name = "smoke";
  spec.rows = 2000;
  spec.cols = 64;
  spec.sparsity = 0.2;
  spec.zipf_rows = 1.1;
  spec.zipf_cols = 1.1;
  spec.seed = 7;
  if (!SharedCatalog().Contains("smoke")) {
    const Status st = RegisterDataset(&SharedCatalog(), spec);
    if (!st.ok()) {
      std::printf("dataset error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const int iterations = 10;
  const std::string script = DfpScript("smoke", iterations);
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  auto m = MeasureScript(script, config, iterations, "smoke-dfp-adaptive");
  if (!m.ok()) {
    std::printf("ERROR %s\n", m.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s %12s %12s\n", "dfp (adaptive)",
              Fmt(m->execution_seconds).c_str(),
              Fmt(m->elapsed_seconds).c_str());

  // Chaos pass: one seeded fault-injected task-graph run, so the
  // remac.fault.* / remac.retry.* metric set registers and the manifest
  // check covers it.
  RunConfig chaos = config;
  chaos.scheduler = SchedulerKind::kTaskGraph;
  chaos.faults = FaultPlan::Chaos(17);
  chaos.executed_iterations = 1;
  auto c = RunScript(script, SharedCatalog(), chaos);
  if (!c.ok()) {
    std::printf("ERROR chaos pass: %s\n", c.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s faults=%lld retries=%lld wasted=%s\n", "dfp (chaos)",
              static_cast<long long>(c->schedule.faults_injected),
              static_cast<long long>(c->schedule.retries),
              Fmt(c->schedule.wasted_seconds).c_str());

  // Serving pass: two requests through a PlanService so the plan-cache
  // (remac.plancache.*) and materialized-intermediate (remac.matcache.*)
  // metric families register and the manifest check covers them. The
  // second request must hit both caches.
  {
    PlanService service(&SharedCatalog());
    const std::string gram =
        "g = t(read(\"smoke\")) %*% read(\"smoke\");\n";
    for (int k = 0; k < 2; ++k) {
      auto r = service.Run({gram, config});
      if (!r.ok()) {
        std::printf("ERROR serve pass: %s\n", r.status().ToString().c_str());
        return 1;
      }
      if (k == 1 && (!r->cache_hit || r->matcache.hits < 1)) {
        std::printf("ERROR serve pass: warm request missed "
                    "(plan hit=%d, intermediate hits=%lld)\n",
                    r->cache_hit ? 1 : 0,
                    static_cast<long long>(r->matcache.hits));
        return 1;
      }
    }
    const ServiceStats stats = service.stats();
    std::printf("%-22s plan hits=%lld intermediate hits=%lld "
                "resident=%lld B\n",
                "gram (served)", static_cast<long long>(stats.cache.hits),
                static_cast<long long>(stats.matcache.hits),
                static_cast<long long>(stats.matcache.resident_bytes));
  }
  return 0;
}
