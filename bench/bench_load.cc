// Open-loop load harness for the serving tier.
//
//   bench_load [--quick] [--json] [--trace-dir=DIR]
//
// Drives the plan service with a corpus of distinct generated scripts
// under Zipf-skewed popularity — the workload shape a shared serving
// tier actually sees: a few hot scripts served warm from the plan
// cache, a long tail of cold ones that must optimize (and, with a
// 64-entry cache over a larger corpus, evict each other).
//
// Unlike the closed-loop repeat harness, arrivals are OPEN-LOOP: a
// dispatcher submits requests at a fixed rate regardless of how fast
// earlier ones finish, so queueing delay is part of the measured
// latency instead of being hidden by back-pressure. Phases:
//
//   1. closed-loop calibration per thread count: N concurrent clients
//      hammer the service -> capacity C(N) req/s (calibrating only at
//      one thread and reusing that figure ran every multi-thread sweep
//      at the wrong rate — C(1) understates what N workers can serve);
//   2. rate sweeps at 0.5C / 1C / 2C across pool sizes (requests ride
//      the request lane, DAG fan-out the exec lane), reporting exact
//      p50/p95/p99 latency (completion minus scheduled arrival),
//      achieved throughput, and wait-time attribution from the
//      contention histograms (single-flight waits, pool queue delay,
//      plan-cache / matcache shard lock waits) -- profiling mode only,
//      so measured phases never allocate span trees;
//   3. the saturation curve: overload (2C) throughput per pool size,
//      gated: throughput must not collapse as threads grow (and must
//      reach 1.8x the 1-thread figure at 4 threads when the machine
//      actually has >= 4 cores — on fewer cores extra threads cannot
//      add parallelism, so only the no-collapse floor applies);
//   4. a traced pass writing per-request span trees to --trace-dir
//      (validated by tools/validate_trace.py in scripts/check.sh);
//   5. a bitwise identity gate: the same request served with tracing
//      off and fully on must produce exactly equal results.
//
// --json writes the whole record to BENCH_service.json (this harness
// owns that file; bench_service keeps the matcache reuse gate).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "sched/thread_pool.h"
#include "service/plan_service.h"

namespace remac {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  bool quick = false;
  bool json = false;
  std::string trace_dir;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (StartsWith(arg, "--trace-dir=")) {
      options.trace_dir = arg.substr(12);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (expected --quick, --json, "
                   "--trace-dir=DIR)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// Distinct-but-cheap script k: one shared Gram chain plus per-script
/// arithmetic whose constants make every fingerprint unique. Three
/// structural shapes cycle so the optimizer sees more than one plan.
std::string CorpusScript(int k) {
  const std::string c = std::to_string(k + 1) + ".0";
  switch (k % 3) {
    case 0:
      return "A = read(\"load\");\n"
             "g = t(A) %*% A;\n"
             "y = " + c + " * g + g %*% g;\n";
    case 1:
      return "A = read(\"load\");\n"
             "p = A %*% (t(A) %*% A);\n"
             "y = p + " + c + " * p;\n";
    default:
      return "A = read(\"load\");\n"
             "g = t(A) %*% A;\n"
             "y = t(g) %*% (g + " + c + " * g);\n";
  }
}

RunConfig LoadConfig() {
  RunConfig config;
  config.max_iterations = 8;
  config.executed_iterations = 1;
  return config;
}

/// Contention histograms whose Sum() deltas attribute where requests
/// waited during a sweep. All registered up front by the instrumented
/// components; GetHistogram is idempotent.
const std::vector<std::pair<const char*, const char*>>& WaitSources() {
  static const std::vector<std::pair<const char*, const char*>> sources = {
      {"flight_wait", "remac.service.flight_wait_seconds"},
      {"matcache_flight_wait", "remac.matcache.flight_wait_seconds"},
      {"pool_queue", "remac.contention.pool_queue_seconds"},
      {"plancache_lock", "remac.contention.plancache_lock_seconds"},
      {"matcache_lock", "remac.contention.matcache_lock_seconds"},
  };
  return sources;
}

struct SweepResult {
  int threads = 0;
  double target_ratio = 0.0;  // rate as a fraction of capacity
  double rate_rps = 0.0;
  int requests = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double throughput_rps = 0.0;
  std::vector<double> wait_seconds;  // parallel to WaitSources()
};

double ExactQuantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One open-loop sweep: submit `seq` at `rate` req/s onto `threads`
/// pool workers, measure completion - scheduled arrival per request.
Result<SweepResult> RunSweep(PlanService* service,
                             const std::vector<std::string>& corpus,
                             const std::vector<int>& seq, double rate,
                             int threads, double target_ratio) {
  ThreadPool::SetGlobalThreads(threads);
  std::vector<double> latency(seq.size(), 0.0);
  std::atomic<int> done{0};
  std::atomic<int> failed{0};

  std::vector<double> before;
  for (const auto& [_, name] : WaitSources()) {
    before.push_back(MetricsRegistry::Global().GetHistogram(name)->Sum());
  }

  const auto t0 = Clock::now();
  for (size_t k = 0; k < seq.size(); ++k) {
    const auto arrival =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(static_cast<double>(k) /
                                               rate));
    std::this_thread::sleep_until(arrival);
    ThreadPool::RequestLane().Submit([service, &corpus, &seq, &latency,
                                      &done, &failed, k, arrival] {
      const auto request =
          ServiceRequest{corpus[static_cast<size_t>(seq[k])], LoadConfig()};
      const auto result = service->Run(request);
      if (!result.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      latency[k] =
          std::chrono::duration<double>(Clock::now() - arrival).count();
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) <
         static_cast<int>(seq.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  if (failed.load() > 0) {
    return Status::Internal(
        StringFormat("%d request(s) failed during the sweep", failed.load()));
  }

  SweepResult result;
  result.threads = threads;
  result.target_ratio = target_ratio;
  result.rate_rps = rate;
  result.requests = static_cast<int>(seq.size());
  std::vector<double> sorted = latency;
  std::sort(sorted.begin(), sorted.end());
  result.p50_seconds = ExactQuantile(sorted, 0.50);
  result.p95_seconds = ExactQuantile(sorted, 0.95);
  result.p99_seconds = ExactQuantile(sorted, 0.99);
  result.throughput_rps = static_cast<double>(seq.size()) / wall;
  for (size_t i = 0; i < WaitSources().size(); ++i) {
    const double after =
        MetricsRegistry::Global()
            .GetHistogram(WaitSources()[i].second)
            ->Sum();
    result.wait_seconds.push_back(std::max(0.0, after - before[i]));
  }
  return result;
}

std::string SweepJson(const SweepResult& r) {
  std::string waits = "{";
  for (size_t i = 0; i < WaitSources().size(); ++i) {
    waits += StringFormat("%s\"%s_seconds\": %.9g", i > 0 ? ", " : "",
                          WaitSources()[i].first, r.wait_seconds[i]);
  }
  waits += "}";
  return StringFormat(
      "{\"threads\": %d, \"target_ratio\": %.2f, \"rate_rps\": %.3f, "
      "\"requests\": %d, \"p50_seconds\": %.9g, \"p95_seconds\": %.9g, "
      "\"p99_seconds\": %.9g, \"throughput_rps\": %.3f, \"waits\": %s}",
      r.threads, r.target_ratio, r.rate_rps, r.requests, r.p50_seconds,
      r.p95_seconds, r.p99_seconds, r.throughput_rps, waits.c_str());
}

/// Exact equality of two result environments — the tracing on/off gate.
bool EnvBitwiseEqual(const std::map<std::string, RtValue>& a,
                     const std::map<std::string, RtValue>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, value] : a) {
    const auto it = b.find(name);
    if (it == b.end()) return false;
    if (value.is_scalar != it->second.is_scalar) return false;
    if (value.is_scalar) {
      if (value.scalar != it->second.scalar) return false;
      continue;
    }
    // tolerance 0.0 == exact element equality across formats.
    if (!value.matrix.ApproxEquals(it->second.matrix, 0.0)) return false;
  }
  return true;
}

}  // namespace

int BenchLoadMain(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "load";
  spec.rows = options.quick ? 240 : 480;
  spec.cols = 16;
  spec.sparsity = 0.3;
  spec.seed = 11;
  if (Status st = RegisterDataset(&catalog, spec); !st.ok()) {
    std::fprintf(stderr, "dataset error: %s\n", st.ToString().c_str());
    return 1;
  }

  const int corpus_size = options.quick ? 200 : 2000;
  const double zipf_exponent = 1.1;
  std::vector<std::string> corpus;
  corpus.reserve(static_cast<size_t>(corpus_size));
  for (int k = 0; k < corpus_size; ++k) corpus.push_back(CorpusScript(k));

  std::printf("=== bench_load: open-loop serving-tier load ===\n");
  std::printf("corpus %d distinct script(s), zipf exponent %.1f\n",
              corpus_size, zipf_exponent);

  ServiceOptions service_options;
  service_options.cache_capacity = 64;
  PlanService service(&catalog, service_options);

  // Measured phases run in profiling mode: contention clocks on, span
  // trees off. This is the configuration the sweep reports describe.
  Tracer::Global().SetProfiling(true);

  // --- 1. closed-loop calibration -> capacity per thread count -------
  const ZipfSampler sampler(static_cast<uint64_t>(corpus_size),
                            zipf_exponent);
  Rng rng(1234);
  auto draw_sequence = [&](int n) {
    std::vector<int> seq;
    seq.reserve(static_cast<size_t>(n));
    for (int k = 0; k < n; ++k) {
      seq.push_back(static_cast<int>(sampler.Sample(rng)));
    }
    return seq;
  };

  // The saturation curve is only meaningful when the same thread counts
  // are measured in every mode, so --quick trims request counts, not
  // the sweep grid.
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const int cal_requests = options.quick ? 60 : 200;
  std::vector<std::pair<int, double>> capacities;
  for (const int threads : thread_counts) {
    ThreadPool::SetGlobalThreads(threads);
    const std::vector<int> cal_seq = draw_sequence(cal_requests);
    std::atomic<size_t> next{0};
    std::atomic<int> failed{0};
    const auto cal_start = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(threads));
    for (int c = 0; c < threads; ++c) {
      clients.emplace_back([&] {
        while (true) {
          const size_t k = next.fetch_add(1, std::memory_order_relaxed);
          if (k >= cal_seq.size()) return;
          auto r = service.Run(ServiceRequest{
              corpus[static_cast<size_t>(cal_seq[k])], LoadConfig()});
          if (!r.ok()) failed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& client : clients) client.join();
    const double cal_wall =
        std::chrono::duration<double>(Clock::now() - cal_start).count();
    if (failed.load() > 0) {
      std::fprintf(stderr, "calibration request(s) failed at %d thread(s)\n",
                   threads);
      return 1;
    }
    const double capacity =
        static_cast<double>(cal_seq.size()) / cal_wall;
    capacities.emplace_back(threads, capacity);
    std::printf("capacity (closed loop, %d client(s)): %.1f req/s over %zu "
                "request(s)\n",
                threads, capacity, cal_seq.size());
    if (options.json) {
      std::printf("{\"bench\": \"load\", \"phase\": \"calibrate\", "
                  "\"threads\": %d, \"requests\": %zu, "
                  "\"wall_seconds\": %.9g, \"capacity_rps\": %.3f}\n",
                  threads, cal_seq.size(), cal_wall, capacity);
    }
  }
  auto capacity_for = [&](int threads) {
    for (const auto& [t, c] : capacities) {
      if (t == threads) return c;
    }
    return capacities.front().second;
  };

  // --- 2. open-loop rate sweeps --------------------------------------
  const std::vector<double> ratios = {0.5, 1.0, 2.0};
  const int per_sweep = options.quick ? 48 : 240;
  std::vector<SweepResult> sweeps;
  for (const int threads : thread_counts) {
    for (const double ratio : ratios) {
      const auto sweep =
          RunSweep(&service, corpus, draw_sequence(per_sweep),
                   capacity_for(threads) * ratio, threads, ratio);
      if (!sweep.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     sweep.status().ToString().c_str());
        return 1;
      }
      sweeps.push_back(sweep.value());
      const SweepResult& r = sweeps.back();
      double waited = 0.0;
      for (const double w : r.wait_seconds) waited += w;
      std::printf(
          "sweep threads=%d rate=%.0f%%C (%.1f req/s): p50 %-9s p95 %-9s "
          "p99 %-9s throughput %.1f req/s, waits %s\n",
          r.threads, 100.0 * r.target_ratio, r.rate_rps,
          HumanSeconds(r.p50_seconds).c_str(),
          HumanSeconds(r.p95_seconds).c_str(),
          HumanSeconds(r.p99_seconds).c_str(), r.throughput_rps,
          HumanSeconds(waited).c_str());
      if (options.json) {
        std::printf("{\"bench\": \"load\", \"phase\": \"sweep\", "
                    "\"point\": %s}\n",
                    SweepJson(r).c_str());
      }
    }
  }

  // --- 3. saturation curve + scaling gate ----------------------------
  // Overload throughput per pool size: at 2x capacity the arrival
  // process outpaces the service, so achieved throughput IS the
  // saturation point for that thread count.
  std::printf("saturation (throughput at 2.0x capacity):");
  std::vector<std::pair<int, double>> saturation;
  for (const SweepResult& r : sweeps) {
    if (r.target_ratio == 2.0) {
      saturation.emplace_back(r.threads, r.throughput_rps);
      std::printf("  %dT %.1f req/s", r.threads, r.throughput_rps);
    }
  }
  std::printf("\n");

  // The gate is hardware-aware: expected parallelism at T threads is
  // min(T, cores), so floors only bind across transitions that add
  // EFFECTIVE parallelism — that is where the old single-lane pool
  // collapsed (~25% lost going 2T -> 4T on a multi-core box). Past the
  // core count the OS scheduler owns throughput (8 workers timesharing
  // 1 core context-switch away real work); those points are reported
  // but not gated. The 1.8x-at-4T scaling floor applies when the
  // machine has the cores to honor it.
  const int cores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const double kCollapseSlack = 0.90;
  bool scaling_ok = true;
  for (size_t i = 1; i < saturation.size(); ++i) {
    const int eff_prev = std::min(saturation[i - 1].first, cores);
    const int eff_cur = std::min(saturation[i].first, cores);
    if (eff_cur <= eff_prev) continue;  // oversubscribed: informational
    if (saturation[i].second <
        kCollapseSlack * saturation[i - 1].second) {
      scaling_ok = false;
      std::fprintf(stderr,
                   "scaling gate: saturated throughput collapsed "
                   "%dT %.1f -> %dT %.1f req/s (floor %.2fx)\n",
                   saturation[i - 1].first, saturation[i - 1].second,
                   saturation[i].first, saturation[i].second,
                   kCollapseSlack);
    }
  }
  double speedup_4t = 0.0;
  for (const auto& [threads, rps] : saturation) {
    if (threads == 4 && saturation.front().first == 1) {
      speedup_4t = rps / saturation.front().second;
    }
  }
  if (cores >= 4 && speedup_4t > 0.0 && speedup_4t < 1.8) {
    scaling_ok = false;
    std::fprintf(stderr,
                 "scaling gate: 4T saturated throughput is only %.2fx "
                 "the 1T figure on a %d-core machine (floor 1.8x)\n",
                 speedup_4t, cores);
  }
  std::printf("scaling gate (%d core(s), 4T/1T %.2fx): %s\n", cores,
              speedup_4t, scaling_ok ? "ok" : "FAIL");
  const ServiceStats load_stats = service.stats();
  std::printf("admission: %lld shed, %lld degraded, %lld coalesced of "
              "%lld request(s)\n",
              static_cast<long long>(load_stats.shed_requests),
              static_cast<long long>(load_stats.degraded_requests),
              static_cast<long long>(load_stats.coalesced_requests),
              static_cast<long long>(load_stats.requests));

  Tracer::Global().SetProfiling(false);

  // --- 4. traced pass ------------------------------------------------
  int traced_written = 0;
  if (!options.trace_dir.empty()) {
    Tracer::Global().SetEnabled(true);
    for (int k = 0; k < 3; ++k) {
      auto r = service.Run(ServiceRequest{corpus[0], LoadConfig()});
      if (!r.ok() || r->trace == nullptr) {
        std::fprintf(stderr, "traced request %d produced no trace\n", k);
        return 1;
      }
      const std::string path =
          options.trace_dir + "/trace-" +
          std::to_string(r->trace->request_id()) + ".json";
      if (Status st = r->trace->WriteChromeJson(path); !st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      ++traced_written;
    }
    Tracer::Global().SetEnabled(false);
    Tracer::Global().SetProfiling(false);
    std::printf("wrote %d trace file(s) to %s\n", traced_written,
                options.trace_dir.c_str());
  }

  // --- 5. tracing on/off bitwise identity gate -----------------------
  // Two fresh services (no shared cache state), same request, tracing
  // fully off vs fully on: the span layer must never perturb results.
  bool identical = true;
  {
    const ServiceRequest request{corpus[1], LoadConfig()};
    PlanService off_service(&catalog, service_options);
    const auto off = off_service.Run(request);
    Tracer::Global().SetEnabled(true);
    PlanService on_service(&catalog, service_options);
    const auto on = on_service.Run(request);
    Tracer::Global().SetEnabled(false);
    Tracer::Global().SetProfiling(false);
    if (!off.ok() || !on.ok()) {
      std::fprintf(stderr, "identity gate request failed\n");
      return 1;
    }
    identical = EnvBitwiseEqual(off->run.env, on->run.env) &&
                on->trace != nullptr && on->trace->size() > 0 &&
                off->trace == nullptr;
    std::printf("tracing on/off identity: %s (%lld span(s) on the traced "
                "run)\n",
                identical ? "bitwise-identical" : "MISMATCH",
                on->trace != nullptr
                    ? static_cast<long long>(on->trace->size())
                    : 0ll);
  }

  ThreadPool::SetGlobalThreads(0);

  // --- BENCH_service.json --------------------------------------------
  if (options.json) {
    FILE* out = std::fopen("BENCH_service.json", "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_service.json\n");
      return 1;
    }
    std::fprintf(out,
                 "{\"bench\": \"service\", \"workload\": \"open-loop-zipf\", "
                 "\"corpus\": %d, \"zipf_exponent\": %.2f, "
                 "\"cores\": %d, \"capacity_rps\": %.3f, "
                 "\"capacities\": [",
                 corpus_size, zipf_exponent, cores,
                 capacity_for(1));
    for (size_t i = 0; i < capacities.size(); ++i) {
      std::fprintf(out, "%s{\"threads\": %d, \"capacity_rps\": %.3f}",
                   i > 0 ? ", " : "", capacities[i].first,
                   capacities[i].second);
    }
    std::fprintf(out, "], \"sweeps\": [");
    for (size_t i = 0; i < sweeps.size(); ++i) {
      std::fprintf(out, "%s%s", i > 0 ? ", " : "",
                   SweepJson(sweeps[i]).c_str());
    }
    std::fprintf(out, "], \"saturation\": [");
    for (size_t i = 0; i < saturation.size(); ++i) {
      std::fprintf(out,
                   "%s{\"threads\": %d, \"throughput_rps\": %.3f}",
                   i > 0 ? ", " : "", saturation[i].first,
                   saturation[i].second);
    }
    std::fprintf(out,
                 "], \"shed_requests\": %lld, \"coalesced_requests\": %lld, "
                 "\"speedup_4t_over_1t\": %.3f, \"scaling_ok\": %s, "
                 "\"trace_identity\": %s}\n",
                 static_cast<long long>(load_stats.shed_requests),
                 static_cast<long long>(load_stats.coalesced_requests),
                 speedup_4t, scaling_ok ? "true" : "false",
                 identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_service.json\n");
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: results with tracing on differ from tracing off\n");
    return 1;
  }
  if (!scaling_ok) {
    std::fprintf(stderr,
                 "FAIL: saturated throughput regressed as threads grew\n");
    return 1;
  }
  return 0;
}

}  // namespace remac

int main(int argc, char** argv) { return remac::BenchLoadMain(argc, argv); }
