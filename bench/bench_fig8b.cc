// Figure 8(b): execution time (other than compilation) of SystemDS*
// (CSE disabled), SystemDS, automatic elimination, and SPORES, for DFP,
// BFGS, GD and partial DFP across the six datasets. The paper's finding:
// automatic elimination wins big on the tall datasets (cri1/red1) but can
// be many times slower on the fat ones (cri3/red3) — blind application of
// implicit CSE/LSE cuts both ways.

#include <cstdio>
#include <vector>

#include "algorithms/scripts.h"
#include "bench/harness.h"

using namespace remac;
using namespace remac::bench;

namespace {

constexpr OptimizerKind kArms[] = {
    OptimizerKind::kSystemDsNoCse,
    OptimizerKind::kSystemDs,
    OptimizerKind::kRemacAutomatic,
    OptimizerKind::kSpores,
};

void Sweep(const char* algo,
           const std::vector<std::string>& datasets, int iterations,
           std::string (*script)(const std::string&, int)) {
  // SPORES cannot run DFP/BFGS/GD entirely (paper Section 6.2.1); its
  // column is only populated for partial DFP.
  const bool spores_supported = std::string(algo) == "partial DFP";
  std::printf("\n--- %s ---\n", algo);
  std::printf("%-8s", "dataset");
  for (OptimizerKind kind : kArms) std::printf(" %13s", OptimizerKindName(kind));
  std::printf("\n");
  for (const std::string& ds : datasets) {
    if (!EnsureDataset(ds, true).ok()) continue;
    std::printf("%-8s", ds.c_str());
    for (OptimizerKind kind : kArms) {
      if (kind == OptimizerKind::kSpores && !spores_supported) {
        std::printf(" %13s", "n/s");
        continue;
      }
      RunConfig config;
      config.optimizer = kind;
      auto m = MeasureScript(script(ds, iterations), config, iterations);
      std::printf(" %13s", m.ok() ? Fmt(m->execution_seconds).c_str()
                                  : "ERROR");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

std::string PartialDfpWrapper(const std::string& ds, int iterations) {
  (void)iterations;
  return PartialDfpScript(ds);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = ParseBenchArgs(argc, argv).quick;
  Banner("Figure 8(b)", "execution time under automatic elimination");
  const std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"cri1", "cri2"}
            : std::vector<std::string>{"cri1", "cri2", "cri3",
                                       "red1", "red2", "red3"};
  const int iterations = 100;
  Sweep("DFP", datasets, iterations, &DfpScript);
  Sweep("BFGS", datasets, iterations, &BfgsScript);
  Sweep("GD", datasets, iterations, &GdScript);
  Sweep("partial DFP", datasets, iterations, &PartialDfpWrapper);
  std::printf(
      "\nExpected shape (paper): 'automatic' far ahead of SystemDS on\n"
      "cri1/red1, but slower than SystemDS on the fat datasets cri3/red3;\n"
      "SPORES close to SystemDS (its sampling misses long-chain CSE).\n");
  return 0;
}
