// Figure 9: overall performance (elapsed time: compilation + execution)
// with different CSE/LSE strategies — SystemDS, conservative, aggressive,
// adaptive — for DFP, BFGS, GD across the six datasets. The paper's
// finding: adaptive elimination matches or beats the better of
// conservative/aggressive everywhere (13.3x over SystemDS on average).

#include <cstdio>
#include <vector>

#include "algorithms/scripts.h"
#include "bench/harness.h"

using namespace remac;
using namespace remac::bench;

namespace {

constexpr OptimizerKind kArms[] = {
    OptimizerKind::kSystemDs,
    OptimizerKind::kRemacConservative,
    OptimizerKind::kRemacAggressive,
    OptimizerKind::kRemacAdaptive,
};

void Sweep(const char* algo, const std::vector<std::string>& datasets,
           int iterations,
           std::string (*script)(const std::string&, int)) {
  std::printf("\n--- %s ---\n", algo);
  std::printf("%-8s", "dataset");
  for (OptimizerKind kind : kArms) {
    std::printf(" %13s", OptimizerKindName(kind));
  }
  std::printf("\n");
  for (const std::string& ds : datasets) {
    if (!EnsureDataset(ds).ok()) continue;
    std::printf("%-8s", ds.c_str());
    for (OptimizerKind kind : kArms) {
      RunConfig config;
      config.optimizer = kind;
      auto m = MeasureScript(script(ds, iterations), config, iterations);
      std::printf(" %13s", m.ok() ? Fmt(m->elapsed_seconds).c_str()
                                  : "ERROR");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = ParseBenchArgs(argc, argv).quick;
  Banner("Figure 9", "overall performance of elimination strategies");
  const std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"cri1", "cri3"}
            : std::vector<std::string>{"cri1", "cri2", "cri3",
                                       "red1", "red2", "red3"};
  const int iterations = 100;
  Sweep("DFP", datasets, iterations, &DfpScript);
  Sweep("BFGS", datasets, iterations, &BfgsScript);
  Sweep("GD", datasets, iterations, &GdScript);
  std::printf(
      "\nExpected shape (paper): conservative always >= SystemDS;\n"
      "aggressive wins on cri1/red1 but collapses on cri3/red3; adaptive\n"
      "is the best (or tied) column everywhere.\n");
  return 0;
}
