#ifndef REMAC_BENCH_HARNESS_H_
#define REMAC_BENCH_HARNESS_H_

// Shared helpers for the per-figure benchmark binaries. Each binary
// regenerates the rows/series of one table or figure of the paper; see
// EXPERIMENTS.md for the paper-vs-measured index.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "data/generators.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "runtime/program_runner.h"
#include "sched/thread_pool.h"

namespace remac {
namespace bench {

/// Command-line knobs shared by every bench binary.
struct BenchOptions {
  bool quick = false;  // smaller datasets / fewer configurations
  /// Threads for the shared pool AND the kernel row-chunking
  /// (0 = hardware default).
  int threads = 0;
  SchedulerKind scheduler = SchedulerKind::kSerial;
  /// Emit one machine-readable JSON line per measurement.
  bool json = false;
};

/// Process-wide options (set once by ParseBenchArgs in main()).
inline BenchOptions& GlobalBenchOptions() {
  static BenchOptions options;
  return options;
}

/// Parses --quick, --threads=N, --scheduler=serial|taskgraph and --json;
/// applies the thread count to the kernels and the shared pool. Returns
/// the parsed options (also stored in GlobalBenchOptions()).
inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (StartsWith(arg, "--threads=")) {
      char* end = nullptr;
      const long value = std::strtol(arg.c_str() + 10, &end, 10);
      if (end == arg.c_str() + 10 || *end != '\0' || value <= 0) {
        std::fprintf(stderr, "--threads expects a positive integer, got '%s'\n",
                     arg.c_str() + 10);
        std::exit(2);
      }
      options.threads = static_cast<int>(value);
    } else if (arg == "--scheduler=taskgraph") {
      options.scheduler = SchedulerKind::kTaskGraph;
    } else if (arg == "--scheduler=serial") {
      options.scheduler = SchedulerKind::kSerial;
    } else if (arg == "--json") {
      options.json = true;
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (expected --quick, --threads=N, "
                   "--scheduler=serial|taskgraph, --json)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  if (options.threads > 0) {
    SetKernelThreads(options.threads);
    ThreadPool::SetGlobalThreads(options.threads);
  }
  if (options.json) {
    // Final machine-readable record: the process-wide metrics registry,
    // emitted after all measurement lines so BENCH_*.json files carry a
    // telemetry block (counters, gauges, histograms).
    std::atexit([] {
      std::printf("{\"metrics\": %s}\n",
                  MetricsRegistry::Global().ToJson().c_str());
    });
  }
  GlobalBenchOptions() = options;
  return options;
}

/// Process-wide catalog with lazily generated datasets.
inline DataCatalog& SharedCatalog() {
  static DataCatalog* catalog = new DataCatalog();
  return *catalog;
}

/// Ensures a paper dataset ("cri2") or a zipf dataset ("zipf-1.4") exists
/// in the shared catalog.
inline Status EnsureDataset(const std::string& name,
                            bool with_partial_dfp_inputs = false) {
  DataCatalog& catalog = SharedCatalog();
  if (catalog.Contains(name)) return Status::OK();
  DatasetSpec spec;
  if (StartsWith(name, "zipf-")) {
    spec = ZipfSpec(std::stod(name.substr(5)));
  } else {
    auto paper = PaperDatasetSpec(name);
    if (!paper.ok()) return paper.status();
    spec = paper.value();
  }
  std::fprintf(stderr, "[data] generating %s (%lld x %lld, sp=%g)...\n",
               name.c_str(), static_cast<long long>(spec.rows),
               static_cast<long long>(spec.cols), spec.sparsity);
  return RegisterDataset(&catalog, spec, with_partial_dfp_inputs);
}

/// One measured configuration, extrapolated to the full horizon.
struct Measurement {
  double compile_wall_seconds = 0.0;
  /// Simulated execution time over `iterations` loop iterations
  /// (excludes compile; includes input partition when configured).
  double execution_seconds = 0.0;
  /// Execution + compile (the paper's "elapsed time").
  double elapsed_seconds = 0.0;
  TimeBreakdown breakdown;  // extrapolated
  OptimizeReport optimize;
  /// DAG accounting of the last executed run (kTaskGraph only).
  ScheduleReport schedule;
};

/// Runs the script executing only 1 and 2 real loop iterations, then
/// extrapolates the simulated loop time linearly to `iterations`
/// (T(N) = T(1) + (N-1) * (T(2) - T(1))). The optimizer always amortizes
/// LSE over the full horizon. This keeps the wall-clock cost of the
/// harness bounded while reporting the full-horizon simulated time; see
/// DESIGN.md ("Simulated time vs wall time").
inline Result<Measurement> MeasureScript(const std::string& script,
                                         RunConfig config, int iterations,
                                         const std::string& label = "") {
  const BenchOptions& options = GlobalBenchOptions();
  config.scheduler = options.scheduler;
  config.pool_threads = options.threads;
  config.max_iterations = iterations;
  Measurement m;
  config.executed_iterations = 1;
  REMAC_ASSIGN_OR_RETURN(const RunReport one,
                         RunScript(script, SharedCatalog(), config));
  config.executed_iterations = 2;
  REMAC_ASSIGN_OR_RETURN(const RunReport two,
                         RunScript(script, SharedCatalog(), config));
  m.compile_wall_seconds = one.compile_wall_seconds;
  m.optimize = one.optimize;
  m.schedule = two.schedule;
  const double n = static_cast<double>(iterations);
  auto extrapolate = [n](double t1, double t2) {
    const double per_iteration = std::max(0.0, t2 - t1);
    return t1 + (n - 1.0) * per_iteration;
  };
  m.breakdown.input_partition_seconds =
      one.breakdown.input_partition_seconds;
  m.breakdown.compilation_seconds = one.breakdown.compilation_seconds;
  m.breakdown.computation_seconds =
      extrapolate(one.breakdown.computation_seconds,
                  two.breakdown.computation_seconds);
  m.breakdown.transmission_seconds =
      extrapolate(one.breakdown.transmission_seconds,
                  two.breakdown.transmission_seconds);
  m.execution_seconds = m.breakdown.computation_seconds +
                        m.breakdown.transmission_seconds +
                        m.breakdown.input_partition_seconds;
  m.elapsed_seconds = m.execution_seconds + m.compile_wall_seconds;
  if (options.json) {
    // One machine-readable line per measurement; threads=0 means the
    // hardware default was used.
    std::printf(
        "{\"label\": \"%s\", \"scheduler\": \"%s\", \"threads\": %d, "
        "\"pool_threads\": %d, \"iterations\": %d, "
        "\"execution_seconds\": %.9g, \"compile_wall_seconds\": %.9g, "
        "\"elapsed_seconds\": %.9g, \"serial_seconds\": %.9g, "
        "\"makespan_seconds\": %.9g, \"critical_path_seconds\": %.9g, "
        "\"tasks\": %lld, \"edges\": %lld}\n",
        label.c_str(), SchedulerKindName(config.scheduler), options.threads,
        m.schedule.pool_threads, iterations, m.execution_seconds,
        m.compile_wall_seconds, m.elapsed_seconds,
        m.schedule.serial_seconds, m.schedule.makespan_seconds,
        m.schedule.critical_path_seconds,
        static_cast<long long>(m.schedule.tasks),
        static_cast<long long>(m.schedule.edges));
  }
  return m;
}

/// Formats a duration for the result tables.
inline std::string Fmt(double seconds) { return HumanSeconds(seconds); }

/// Prints a standard figure header.
inline void Banner(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(simulated cluster time; see DESIGN.md for the substitution\n");
  std::printf(" of the paper's 7-node Spark testbed)\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace remac

#endif  // REMAC_BENCH_HARNESS_H_
