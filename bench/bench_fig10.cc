// Figure 10: adaptive elimination with different combination methods and
// sparsity estimators — DP vs brute-force enumeration (Enum), each with
// the metadata-based (MD) and MNC estimators. (a) compilation time to
// generate the efficient plan; (b) elapsed time (compilation+execution).
// The paper's finding: DP avoids the combinatorial explosion (Enum takes
// over three days on GNMF); MD compiles faster but can mislead the
// optimizer into suboptimal plans that MNC avoids.

#include <cstdio>
#include <vector>

#include "algorithms/scripts.h"
#include "bench/harness.h"

using namespace remac;
using namespace remac::bench;

namespace {

struct Arm {
  const char* label;
  CombinerKind combiner;
  EstimatorKind estimator;
};

constexpr Arm kArms[] = {
    {"DP-MD", CombinerKind::kDp, EstimatorKind::kMetadata},
    {"DP-MNC", CombinerKind::kDp, EstimatorKind::kMnc},
    {"Enum-MD", CombinerKind::kEnumDepthFirst, EstimatorKind::kMetadata},
    {"Enum-MNC", CombinerKind::kEnumDepthFirst, EstimatorKind::kMnc},
};

void Sweep(const char* algo, const std::vector<std::string>& datasets,
           int iterations, int64_t enum_budget,
           std::string (*script)(const std::string&, int)) {
  std::printf("\n--- %s ---\n", algo);
  std::printf("%-8s", "dataset");
  for (const Arm& arm : kArms) {
    std::printf(" | %11s %11s", arm.label, "");
  }
  std::printf("\n%-8s", "");
  for (size_t i = 0; i < std::size(kArms); ++i) {
    std::printf(" | %11s %11s", "compile", "elapsed");
  }
  std::printf("\n");
  for (const std::string& ds : datasets) {
    if (!EnsureDataset(ds).ok()) continue;
    std::printf("%-8s", ds.c_str());
    for (const Arm& arm : kArms) {
      RunConfig config;
      config.optimizer = OptimizerKind::kRemacAdaptive;
      config.combiner = arm.combiner;
      config.estimator = arm.estimator;
      config.enum_budget = enum_budget;
      auto m = MeasureScript(script(ds, iterations), config, iterations);
      if (m.ok()) {
        std::printf(" | %11s %11s", Fmt(m->compile_wall_seconds).c_str(),
                    Fmt(m->elapsed_seconds).c_str());
      } else {
        std::printf(" | %11s %11s", "ERROR", "");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = ParseBenchArgs(argc, argv).quick;
  Banner("Figure 10",
         "adaptive elimination: DP vs Enum, MD vs MNC estimators");
  const std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"cri2"}
            : std::vector<std::string>{"cri1", "cri2", "cri3",
                                       "red1", "red2", "red3"};
  const int iterations = 100;
  // Enum's evaluation budget: large enough to dominate DP's cost by an
  // order of magnitude (the paper's Enum runs minutes to days; exhausting
  // the full subset lattice here would be equally unbounded).
  const int64_t enum_budget = quick ? 500 : 1500;
  Sweep("DFP", datasets, iterations, enum_budget, &DfpScript);
  Sweep("BFGS", datasets, iterations, enum_budget, &BfgsScript);
  Sweep("GD", datasets, iterations, enum_budget, &GdScript);
  std::printf(
      "\nGNMF note (paper Section 6.3.3): Enum took over three days on\n"
      "GNMF while DP finished in <150s; here Enum is budget-capped, so it\n"
      "additionally risks *missing* the best combination.\n");
  return 0;
}
