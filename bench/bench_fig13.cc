// Figure 13: work balance — the proportion of resident data bytes per
// Spark worker for DFP's input matrix under growing skew. The paper's
// finding: hash partitioning of fixed-size blocks keeps every worker near
// 1/6 of the data regardless of skew.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "cluster/partitioner.h"
#include "distributed/blocked_matrix.h"

using namespace remac;
using namespace remac::bench;

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Figure 13", "per-worker data proportion under skew");
  ClusterModel model;
  // Match the data scale: small blocks so the grid is non-trivial.
  model.block_size = 256;
  const HashPartitioner partitioner(model.num_workers);
  std::printf("%-10s", "dataset");
  for (int w = 0; w < model.num_workers; ++w) {
    std::printf(" worker%d", w);
  }
  std::printf("\n");
  std::vector<std::string> datasets = {"cri2"};
  for (double e : {0.0, 0.7, 1.4, 2.1, 2.8}) {
    datasets.push_back(StringFormat("zipf-%.1f", e));
  }
  for (const std::string& ds : datasets) {
    if (!EnsureDataset(ds).ok()) continue;
    auto value = SharedCatalog().Value(ds);
    const BlockedMatrix blocked =
        BlockedMatrix::Partition(value.value(), model);
    const std::vector<double> loads = blocked.PerWorkerBytes(partitioner);
    double total = 0.0;
    for (double l : loads) total += l;
    std::printf("%-10s", ds.c_str());
    double max_prop = 0.0;
    double min_prop = 1.0;
    for (double l : loads) {
      const double prop = total > 0 ? l / total : 0.0;
      max_prop = std::max(max_prop, prop);
      min_prop = std::min(min_prop, prop);
      std::printf("  %6.4f", prop);
    }
    std::printf("   (spread %.4f)\n", max_prop - min_prop);
  }
  std::printf(
      "\nExpected shape (paper): all proportions near 1/%d regardless of\n"
      "the Zipf exponent — hash partitioning of fixed-size blocks absorbs\n"
      "the skew.\n",
      model.num_workers);
  return 0;
}
