// Figure 3: performance of DFP under different elimination choices, in a
// distributed setting (a) and a single-node setting (b). The paper's
// finding: eliminating A^T A and d d^T helps on a single node but is
// detrimental distributed, and contradictory/blind picks underperform the
// efficient combination.

#include <cstdio>

#include "algorithms/scripts.h"
#include "bench/harness.h"
#include "plan/chain.h"

using namespace remac;
using namespace remac::bench;

namespace {

struct Arm {
  const char* label;
  OptimizerKind optimizer;
  bool force_ata_ddt = false;
};

constexpr Arm kArms[] = {
    {"no CSE/LSE", OptimizerKind::kSystemDsNoCse, false},
    {"explicit", OptimizerKind::kSystemDs, false},
    {"all found (auto)", OptimizerKind::kRemacAutomatic, false},
    {"ATA,ddT only", OptimizerKind::kRemacAdaptive, true},
    {"efficient (adaptive)", OptimizerKind::kRemacAdaptive, false},
};

void RunSetting(const char* title, const ClusterModel& cluster,
                const std::string& script, int iterations) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-22s %12s %12s\n", "elimination", "exec time", "elapsed");
  for (const Arm& arm : kArms) {
    RunConfig config;
    config.cluster = cluster;
    config.optimizer = arm.optimizer;
    if (arm.force_ata_ddt) {
      // Exactly the paper's fixed pick: the LSE of A^T A and the CSE of
      // d d^T (which, with d = Hg inlined, reads H g g^T H).
      config.forced_option_keys = {
          JoinKey({"A'", "A"}),
          JoinKey({"H@0", "g@1", "g@1'", "H@0"}),
      };
    }
    auto m = MeasureScript(script, config, iterations);
    if (!m.ok()) {
      std::printf("%-22s ERROR %s\n", arm.label, m.status().ToString().c_str());
      continue;
    }
    std::printf("%-22s %12s %12s\n", arm.label,
                Fmt(m->execution_seconds).c_str(),
                Fmt(m->elapsed_seconds).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Figure 3", "SystemDS-style DFP under different CSE/LSE choices");
  // A denser cri2-shaped dataset: the single-node panel is disk-bound
  // (the paper runs 30-40GB against 32GB RAM), so the dataset must be
  // large relative to the n^3 update chains for the same trade-off to
  // appear at laptop scale.
  DatasetSpec spec;
  spec.name = "fig3";
  spec.rows = 50000;
  spec.cols = 870;
  spec.sparsity = 0.35;
  spec.zipf_rows = 1.1;
  spec.zipf_cols = 1.1;
  spec.seed = 303;
  if (!SharedCatalog().Contains("fig3")) {
    const Status st = RegisterDataset(&SharedCatalog(), spec);
    if (!st.ok()) {
      std::printf("dataset error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const int iterations = 100;
  const std::string script = DfpScript("fig3", iterations);
  // Distributed panel: a tighter per-object memory share pushes the n x n
  // intermediates (A^T A, d d^T products) into distributed CPMM land,
  // like the paper's 8.7K x 8.7K matrices on its testbed.
  ClusterModel distributed;
  distributed.driver_memory_bytes = 16LL << 20;
  RunSetting("(a) distributed setting (6 workers)", distributed, script,
             iterations);
  RunSetting("(b) single-node setting (out-of-core)",
             ClusterModel::SingleNode(), script, iterations);
  std::printf(
      "\nExpected shape (paper): distributed, blind ATA/ddT elimination is\n"
      "several times slower than 'explicit'; single-node it helps. The\n"
      "efficient combination wins in both settings.\n");
  return 0;
}
