// Kernel-layer micro-benchmark + regression gate (ISSUE 5).
//
// Measures the new cache-blocked GEMM against the naive reference and the
// fused transpose-multiply against the pre-PR materialize-then-multiply
// path on >= 1024^2 dense shapes, plus 1/2/8-thread scaling rows. Writes
// BENCH_kernels.json to the working directory and exits non-zero when the
// measured speedups fall below the gate thresholds, so scripts/check.sh
// fails on kernel performance regressions:
//   blocked GEMM  >= --min-gemm-speedup   (default 1.5) x naive
//   fused AtB     >= --min-fused-speedup  (default 1.3) x materialized
//   fused tape    >= --min-fusion-speedup (default 1.5) x op-at-a-time
// The fused comparison is against the pre-PR executor path (materialize
// the transpose, then naive multiply); the JSON also reports the tougher
// fused-vs-(transpose + blocked GEMM) ratio for transparency. The fusion
// phase (ISSUE 10) runs a 4-op dense elementwise chain through the
// single-pass tape interpreter versus the unfused kernel sequence that
// materializes every intermediate, verifying bitwise identity.
//
// This binary parses its own flags (it needs gate thresholds the shared
// harness does not know about): --quick --json --threads=N
// --min-gemm-speedup=X --min-fused-speedup=X --min-fusion-speedup=X.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "matrix/fused_tape.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "sched/thread_pool.h"

namespace remac {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  bool quick = false;
  bool json = false;
  int threads = 0;  // 0 = leave the hardware default
  double min_gemm_speedup = 1.5;
  double min_fused_speedup = 1.3;
  double min_fusion_speedup = 1.5;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto double_flag = [&](const char* prefix, double* out) {
      const size_t len = std::strlen(prefix);
      if (!StartsWith(arg, prefix)) return false;
      char* end = nullptr;
      const double value = std::strtod(arg.c_str() + len, &end);
      if (end == arg.c_str() + len || *end != '\0' || value <= 0.0) {
        std::fprintf(stderr, "%s expects a positive number, got '%s'\n",
                     prefix, arg.c_str() + len);
        std::exit(2);
      }
      *out = value;
      return true;
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (StartsWith(arg, "--threads=")) {
      char* end = nullptr;
      const long value = std::strtol(arg.c_str() + 10, &end, 10);
      if (end == arg.c_str() + 10 || *end != '\0' || value <= 0) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        std::exit(2);
      }
      options.threads = static_cast<int>(value);
    } else if (double_flag("--min-gemm-speedup=", &options.min_gemm_speedup) ||
               double_flag("--min-fused-speedup=",
                           &options.min_fused_speedup) ||
               double_flag("--min-fusion-speedup=",
                           &options.min_fusion_speedup)) {
      // handled
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (expected --quick, --json, "
                   "--threads=N, --min-gemm-speedup=X, "
                   "--min-fused-speedup=X, --min-fusion-speedup=X)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  if (options.threads > 0) {
    SetKernelThreads(options.threads);
    ThreadPool::SetGlobalThreads(options.threads);
  }
  if (options.json) {
    std::atexit([] {
      std::printf("{\"metrics\": %s}\n",
                  MetricsRegistry::Global().ToJson().c_str());
    });
  }
  return options;
}

Matrix DenseRandom(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextGaussian();
  return Matrix::WrapDense(std::move(m));
}

/// Best-of-`reps` wall time of `fn` in seconds (min filters scheduler and
/// allocator noise, the standard micro-bench reduction).
template <typename Fn>
double BestOf(int reps, Fn fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

bool BitwiseEqualDense(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() ||
      a.is_dense() != b.is_dense() || !a.is_dense()) {
    return false;
  }
  return a.dense().size() == 0 ||
         std::memcmp(a.dense().data(), b.dense().data(),
                     a.dense().size() * sizeof(double)) == 0;
}

int RunBench(const Options& options) {
  // The gate shape stays >= 1024^2 even under --quick (the acceptance bar
  // is defined on 1024^2 dense operands); --quick only trims repetitions
  // and the thread-scaling shape.
  const int64_t n = 1024;
  const int reps = options.quick ? 2 : 4;

  std::printf("bench_kernels: shape %lldx%lldx%lld dense, best of %d\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(n), reps);

  const Matrix a = DenseRandom(n, n, 101);
  const Matrix b = DenseRandom(n, n, 102);

  // --- 1. blocked GEMM vs naive reference -------------------------------
  Matrix blocked_out = Multiply(a, b).value();  // warm-up + result capture
  const double blocked_s = BestOf(reps, [&] { Multiply(a, b).value(); });
  const Matrix naive_out = MultiplyReferenceNaive(a, b).value();
  const double naive_s =
      BestOf(reps, [&] { MultiplyReferenceNaive(a, b).value(); });
  if (!BitwiseEqualDense(blocked_out, naive_out)) {
    std::fprintf(stderr, "FATAL: blocked GEMM differs from naive\n");
    return 1;
  }
  const double gemm_speedup = naive_s / blocked_s;
  std::printf("  gemm: naive %.3fs  blocked %.3fs  speedup %.2fx (gate %.2fx)\n",
              naive_s, blocked_s, gemm_speedup, options.min_gemm_speedup);

  // --- 2. fused AtB vs materialize-then-multiply ------------------------
  // `materialized_naive` is the pre-PR ExecMultiply path: copy t(A), then
  // run the (then untiled) multiply. `materialized_blocked` re-bases the
  // comparison on the new GEMM, isolating the win of skipping the copy.
  const Matrix fused_out = MultiplyTransposed(a, true, b, false).value();
  const double fused_s =
      BestOf(reps, [&] { MultiplyTransposed(a, true, b, false).value(); });
  const Matrix mat_out = Multiply(Transpose(a), b).value();
  const double mat_naive_s = BestOf(
      reps, [&] { MultiplyReferenceNaive(Transpose(a), b).value(); });
  const double mat_blocked_s =
      BestOf(reps, [&] { Multiply(Transpose(a), b).value(); });
  if (!BitwiseEqualDense(fused_out, mat_out)) {
    std::fprintf(stderr, "FATAL: fused AtB differs from materialized\n");
    return 1;
  }
  const double fused_speedup = mat_naive_s / fused_s;
  const double fused_vs_blocked = mat_blocked_s / fused_s;
  std::printf(
      "  fused AtB: materialized(naive) %.3fs  materialized(blocked) %.3fs  "
      "fused %.3fs  speedup %.2fx (gate %.2fx)  vs-blocked %.2fx\n",
      mat_naive_s, mat_blocked_s, fused_s, fused_speedup,
      options.min_fused_speedup, fused_vs_blocked);

  // --- 3. fused elementwise tape vs op-at-a-time ------------------------
  // The 4-op dense chain max((a + b) * a - b, a), exactly as the fusion
  // pass would tape it (DFS input occurrences, no dedup). The unfused
  // baseline is the kernel sequence the executor ran pre-fusion: four
  // passes, three materialized n^2 intermediates.
  FusedTape tape;
  tape.rows = n;
  tape.cols = n;
  tape.num_inputs = 5;
  tape.input_scalar.assign(5, 0);
  tape.steps = {{FusedOp::kAdd, 0, 1},
                {FusedOp::kMul, 5, 2},
                {FusedOp::kSub, 6, 3},
                {FusedOp::kMax, 7, 4}};
  const std::vector<Matrix> tape_inputs = {a, b, a, b, a};
  auto run_fused = [&] {
    return ExecuteFusedTape(tape, tape_inputs, {}).value().output;
  };
  auto run_unfused = [&] {
    const Matrix t0 = Add(a, b).value();
    const Matrix t1 = ElementwiseMultiply(t0, a).value();
    const Matrix t2 = Subtract(t1, b).value();
    return ElementwiseMax(t2, a).value();
  };
  const Matrix fusion_out = run_fused();  // warm-up + result capture
  const double fusion_fused_s = BestOf(reps, [&] { run_fused(); });
  const Matrix unfused_out = run_unfused();
  const double fusion_unfused_s = BestOf(reps, [&] { run_unfused(); });
  if (!BitwiseEqualDense(fusion_out, unfused_out)) {
    std::fprintf(stderr, "FATAL: fused tape differs from unfused chain\n");
    return 1;
  }
  const double fusion_speedup = fusion_unfused_s / fusion_fused_s;
  std::printf(
      "  fusion (4-op chain): unfused %.3fs  fused %.3fs  speedup %.2fx "
      "(gate %.2fx)\n",
      fusion_unfused_s, fusion_fused_s, fusion_speedup,
      options.min_fusion_speedup);

  // --- 4. thread scaling (informational) --------------------------------
  const int64_t sn = options.quick ? 512 : 1024;
  const Matrix sa = DenseRandom(sn, sn, 103);
  const Matrix sb = DenseRandom(sn, sn, 104);
  struct ThreadRow {
    int threads;
    double blocked_s;
    double fused_s;
  };
  std::vector<ThreadRow> rows;
  const int saved_threads = options.threads;
  for (int threads : {1, 2, 8}) {
    SetKernelThreads(threads);
    ThreadRow row;
    row.threads = threads;
    row.blocked_s = BestOf(reps, [&] { Multiply(sa, sb).value(); });
    row.fused_s =
        BestOf(reps, [&] { MultiplyTransposed(sa, true, sb, false).value(); });
    rows.push_back(row);
    std::printf("  threads=%d (%lld^3): blocked %.3fs  fused AtB %.3fs\n",
                threads, static_cast<long long>(sn), row.blocked_s,
                row.fused_s);
  }
  SetKernelThreads(saved_threads);  // 0 restores the hardware default

  const bool gemm_ok = gemm_speedup >= options.min_gemm_speedup;
  const bool fused_ok = fused_speedup >= options.min_fused_speedup;
  const bool fusion_ok = fusion_speedup >= options.min_fusion_speedup;
  const bool all_ok = gemm_ok && fused_ok && fusion_ok;

  // --- 5. BENCH_kernels.json --------------------------------------------
  FILE* out = std::fopen("BENCH_kernels.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\"bench\": \"kernels\", \"shape\": %lld, \"reps\": %d,\n"
               " \"gemm\": {\"naive_seconds\": %.9g, \"blocked_seconds\": "
               "%.9g, \"speedup\": %.4g, \"min_required\": %.4g},\n"
               " \"fused_atb\": {\"materialized_naive_seconds\": %.9g, "
               "\"materialized_blocked_seconds\": %.9g, \"fused_seconds\": "
               "%.9g, \"speedup_vs_materialized\": %.4g, "
               "\"speedup_vs_materialized_blocked\": %.4g, "
               "\"min_required\": %.4g},\n"
               " \"fusion\": {\"chain_ops\": %d, \"unfused_seconds\": %.9g, "
               "\"fused_seconds\": %.9g, \"speedup\": %.4g, "
               "\"min_required\": %.4g},\n"
               " \"thread_scaling_shape\": %lld,\n \"thread_scaling\": [",
               static_cast<long long>(n), reps, naive_s, blocked_s,
               gemm_speedup, options.min_gemm_speedup, mat_naive_s,
               mat_blocked_s, fused_s, fused_speedup, fused_vs_blocked,
               options.min_fused_speedup,
               static_cast<int>(tape.steps.size()), fusion_unfused_s,
               fusion_fused_s, fusion_speedup, options.min_fusion_speedup,
               static_cast<long long>(sn));
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "%s{\"threads\": %d, \"blocked_seconds\": %.9g, "
                 "\"fused_seconds\": %.9g}",
                 i == 0 ? "" : ", ", rows[i].threads, rows[i].blocked_s,
                 rows[i].fused_s);
  }
  std::fprintf(out, "],\n \"pass\": %s}\n", all_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_kernels.json\n");

  if (options.json) {
    std::printf(
        "{\"label\": \"kernels\", \"gemm_speedup\": %.4g, "
        "\"fused_speedup\": %.4g, \"fused_vs_blocked\": %.4g, "
        "\"fusion_speedup\": %.4g, \"pass\": %s}\n",
        gemm_speedup, fused_speedup, fused_vs_blocked, fusion_speedup,
        all_ok ? "true" : "false");
  }

  if (!gemm_ok) {
    std::fprintf(stderr,
                 "GATE FAIL: blocked GEMM speedup %.2fx < required %.2fx\n",
                 gemm_speedup, options.min_gemm_speedup);
  }
  if (!fused_ok) {
    std::fprintf(stderr,
                 "GATE FAIL: fused AtB speedup %.2fx < required %.2fx\n",
                 fused_speedup, options.min_fused_speedup);
  }
  if (!fusion_ok) {
    std::fprintf(stderr,
                 "GATE FAIL: fusion speedup %.2fx < required %.2fx\n",
                 fusion_speedup, options.min_fusion_speedup);
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace remac

int main(int argc, char** argv) {
  const remac::Options options = remac::ParseArgs(argc, argv);
  return remac::RunBench(options);
}
