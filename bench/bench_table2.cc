// Table 2: dataset statistics (rows, columns, sparsity, footprint) of the
// scaled synthetic stand-ins for the Criteo/Reddit samples.

#include <cstdio>

#include "bench/harness.h"
#include "matrix/matrix.h"

using namespace remac;
using namespace remac::bench;

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  Banner("Table 2", "dataset statistics (scaled synthetic stand-ins)");
  std::printf("%-8s %10s %9s %12s %12s %10s\n", "Dataset", "Rows#",
              "Columns#", "Sparsity", "NNZ", "Footprint");
  for (const DatasetSpec& spec : PaperDatasetSpecs()) {
    const Status st = EnsureDataset(spec.name);
    if (!st.ok()) {
      std::printf("%-8s ERROR %s\n", spec.name.c_str(),
                  st.ToString().c_str());
      continue;
    }
    auto value = SharedCatalog().Value(spec.name);
    const Matrix& m = value.value();
    std::printf("%-8s %10lld %9lld %12.2e %12lld %10s\n", spec.name.c_str(),
                static_cast<long long>(m.rows()),
                static_cast<long long>(m.cols()), m.Sparsity(),
                static_cast<long long>(m.nnz()),
                HumanBytes(static_cast<double>(m.SizeInBytes())).c_str());
  }
  std::printf(
      "\nPaper reference (Table 2): cri1 116.8M x 47 sp 6.0e-1 40.9GB; "
      "cri2 58.4M x 8.7K sp 4.5e-3; cri3 58.4M x 15.0K sp 2.6e-3;\n"
      "red1 120.0M x 34 sp 5.1e-1; red2 104.5M x 5.0K sp 3.9e-3; "
      "red3 104.5M x 20.0K sp 9.6e-4. Rows are scaled by ~1000 and sparse\n"
      "column counts by ~10; sparsity and the tall/fat contrast are "
      "preserved (see DESIGN.md).\n");
  return 0;
}
