// remac — command-line front end.
//
//   remac run SCRIPT.dml [options]     compile + execute a script
//   remac serve SCRIPT.dml [options]   repeated requests through the
//                                      plan service (fingerprinted cache)
//   remac compile SCRIPT.dml [options] compile only, print the plan
//   remac trace TRACE.json             summarize a per-request trace file
//                                      (top wait sources, stage rollup)
//   remac datasets                     list the built-in paper datasets
//   remac gen NAME OUT.mtx             generate a paper dataset to a file
//
// Options for run/serve/compile:
//   --data NAME=PATH.mtx     load a MatrixMarket file as dataset NAME
//   --dataset NAME[:ALIAS]   generate the built-in paper dataset NAME
//                            (cri1..red3, zipf-<e>); registers it (and the
//                            _b / _pd / _pH companions) as ALIAS (default
//                            NAME), so scripts can run on any dataset
//   --optimizer KIND         as-written | systemds | systemds* | spores |
//                            none | automatic | conservative | aggressive |
//                            adaptive (default)
//   --estimator KIND         md | mnc (default) | exact
//   --engine KIND            systemds (default) | pbdr | scidb
//   --iterations N           loop cap / LSE horizon (default 20)
//   --print-plan             print the optimized program
//   --dot PATH.dot           write the optimized program as Graphviz DOT
//   --print VAR              print a result variable (matrix summaries)
//   --repeat N               run the script N times through the plan
//                            service (run: opt-in; serve default 8)
//   --cache-size N           plan-cache capacity in entries (default 64)
//   --mat-cache-mb N         serve mode: materialized-intermediate cache
//                            budget in MiB (default 256; 0 disables
//                            cross-request intermediate sharing)
//   --threads N              thread count for the shared pool
//   --chaos SEED             chaos run: inject deterministic faults
//                            (transients, stragglers, one worker crash)
//                            into the task-graph scheduler; retries keep
//                            results bitwise-identical to a fault-free run
//   --deadline SEC           serve mode: per-request soft deadline; late
//                            requests degrade to the serial executor
//   --backlog FACTOR         serve mode: admission control — shed a request
//                            to the serial executor when either lane's
//                            backlog exceeds FACTOR x lane size (default 8;
//                            0 disables shedding)
//   --coalesce               serve mode: coalesce concurrent warm hits on
//                            the same deterministic plan into one execution
//   --no-fuse                disable elementwise-chain fusion (results are
//                            bitwise-identical either way; for A/B timing)
//   --stats                  print the telemetry snapshot (metrics registry
//                            plus the cost-model accuracy audit) at exit
//   --metrics-out PATH       dump the metrics registry to PATH at exit
//                            (.prom/.txt = Prometheus text, else JSON);
//                            serve mode refreshes it while running (at
//                            most once a second, atomic rename)
//   --trace-dir DIR          serve mode: enable request tracing and write
//                            one Chrome-trace JSON per request to
//                            DIR/trace-<request_id>.json (open with
//                            chrome://tracing or `remac trace FILE`)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "data/generators.h"
#include "io/matrix_market.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "plan/plan_dot.h"
#include "runtime/program_runner.h"
#include "sched/thread_pool.h"
#include "service/plan_service.h"

namespace remac {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: remac run|serve|compile SCRIPT.dml [--data NAME=PATH] "
               "[--dataset NAME] [--optimizer KIND] [--estimator KIND] "
               "[--engine KIND] [--iterations N] [--print-plan] "
               "[--print VAR] [--repeat N] [--cache-size N] "
               "[--mat-cache-mb N] [--threads N] "
               "[--chaos SEED] [--deadline SEC] "
               "[--backlog FACTOR] [--coalesce] "
               "[--dist2d auto|off|force2d] [--no-fuse] "
               "[--stats] [--metrics-out PATH] [--trace-dir DIR]\n"
               "       remac trace TRACE.json\n"
               "       remac datasets\n"
               "       remac gen NAME OUT.mtx\n");
  return 2;
}

Result<OptimizerKind> ParseOptimizer(const std::string& name) {
  if (name == "as-written") return OptimizerKind::kAsWritten;
  if (name == "systemds") return OptimizerKind::kSystemDs;
  if (name == "systemds*") return OptimizerKind::kSystemDsNoCse;
  if (name == "spores") return OptimizerKind::kSpores;
  if (name == "none") return OptimizerKind::kRemacNone;
  if (name == "automatic") return OptimizerKind::kRemacAutomatic;
  if (name == "conservative") return OptimizerKind::kRemacConservative;
  if (name == "aggressive") return OptimizerKind::kRemacAggressive;
  if (name == "adaptive") return OptimizerKind::kRemacAdaptive;
  return Status::InvalidArgument("unknown optimizer '" + name + "'");
}

Result<EstimatorKind> ParseEstimator(const std::string& name) {
  if (name == "md") return EstimatorKind::kMetadata;
  if (name == "mnc") return EstimatorKind::kMnc;
  if (name == "sample") return EstimatorKind::kSampling;
  if (name == "exact") return EstimatorKind::kExact;
  return Status::InvalidArgument("unknown estimator '" + name + "'");
}

Result<EngineKind> ParseEngine(const std::string& name) {
  if (name == "systemds") return EngineKind::kSystemDsLike;
  if (name == "pbdr") return EngineKind::kPbdR;
  if (name == "scidb") return EngineKind::kSciDb;
  return Status::InvalidArgument("unknown engine '" + name + "'");
}

Result<Dist2DMode> ParseDist2D(const std::string& name) {
  if (name == "auto") return Dist2DMode::kAuto;
  if (name == "off") return Dist2DMode::kOff;
  if (name == "force2d") return Dist2DMode::kForce2D;
  return Status::InvalidArgument("unknown dist2d mode '" + name + "'");
}

/// "NAME" or "NAME:ALIAS" — generates built-in dataset NAME and registers
/// it (and its _b/_pd/_pH companions) under ALIAS, so any script can run
/// against any dataset.
Status RegisterNamedDataset(DataCatalog* catalog, const std::string& arg) {
  std::string name = arg;
  std::string alias = arg;
  const size_t colon = arg.find(':');
  if (colon != std::string::npos) {
    name = arg.substr(0, colon);
    alias = arg.substr(colon + 1);
  }
  DatasetSpec spec;
  if (StartsWith(name, "zipf-")) {
    spec = ZipfSpec(std::stod(name.substr(5)));
  } else {
    REMAC_ASSIGN_OR_RETURN(spec, PaperDatasetSpec(name));
  }
  spec.name = alias;
  std::fprintf(stderr, "[remac] generating %s as %s (%lld x %lld, sp=%g)\n",
               name.c_str(), alias.c_str(), static_cast<long long>(spec.rows),
               static_cast<long long>(spec.cols), spec.sparsity);
  return RegisterDataset(catalog, spec, /*with_partial_dfp_inputs=*/true);
}

void PrintValue(const std::string& name, const RtValue& value) {
  if (value.is_scalar) {
    std::printf("%s = %.10g\n", name.c_str(), value.scalar);
    return;
  }
  const Matrix& m = value.matrix;
  std::printf("%s: %lld x %lld, nnz=%lld, sparsity=%.3g, |.|_F=%.6g\n",
              name.c_str(), static_cast<long long>(m.rows()),
              static_cast<long long>(m.cols()),
              static_cast<long long>(m.nnz()), m.Sparsity(),
              FrobeniusNorm(m));
  const int64_t show_rows = std::min<int64_t>(m.rows(), 4);
  const int64_t show_cols = std::min<int64_t>(m.cols(), 8);
  for (int64_t r = 0; r < show_rows; ++r) {
    std::printf("  ");
    for (int64_t c = 0; c < show_cols; ++c) {
      std::printf("%10.4g", m.At(r, c));
    }
    std::printf("%s\n", show_cols < m.cols() ? " ..." : "");
  }
  if (show_rows < m.rows()) std::printf("  ...\n");
}

/// Prints the physical layout the cost model stamped on every multiply
/// (PlanNode::layout, from AnnotateMultiplyLayouts) — the per-operator
/// 1D-vs-2D decision record for `remac run --stats`.
void PrintMultiplyLayouts(const PlanNode& node) {
  for (const auto& child : node.children) PrintMultiplyLayouts(*child);
  if (node.op == PlanOp::kMatMul) {
    std::printf("  %-9s %s\n", MultiplyLayoutName(node.layout),
                node.ToString().c_str());
  }
}

void PrintMultiplyLayouts(const std::vector<CompiledStmt>& statements) {
  for (const CompiledStmt& stmt : statements) {
    if (stmt.plan != nullptr) PrintMultiplyLayouts(*stmt.plan);
    if (stmt.condition != nullptr) PrintMultiplyLayouts(*stmt.condition);
    PrintMultiplyLayouts(stmt.body);
  }
}

/// Numeric field extractor for the line-oriented trace JSON the service
/// emits (one event per line). Returns `fallback` when the key is absent.
double TraceField(const std::string& line, const std::string& key,
                  double fallback) {
  const std::string pattern = "\"" + key + "\":";
  const size_t pos = line.find(pattern);
  if (pos == std::string::npos) return fallback;
  return std::atof(line.c_str() + pos + pattern.size());
}

std::string TraceStringField(const std::string& line,
                             const std::string& key) {
  const std::string pattern = "\"" + key + "\":\"";
  const size_t pos = line.find(pattern);
  if (pos == std::string::npos) return "";
  const size_t start = pos + pattern.size();
  const size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

/// `remac trace FILE` — wait-time attribution for one request's span
/// tree. Wait spans (category "wait") name the contention point they
/// blocked on: pool-queue, flight-wait, plancache-lock, matcache-lock...
int TraceSummary(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 1;
  }
  struct Bucket {
    int64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Bucket> waits;
  std::map<std::string, Bucket> categories;
  int64_t spans = 0;
  long long request_id = -1;
  double root_us = 0.0;
  std::string line;
  while (std::getline(file, line)) {
    if (request_id < 0 && line.find("\"remac\"") != std::string::npos) {
      request_id =
          static_cast<long long>(TraceField(line, "request_id", -1.0));
    }
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    ++spans;
    const std::string name = TraceStringField(line, "name");
    const std::string cat = TraceStringField(line, "cat");
    const double dur_us = TraceField(line, "dur", 0.0);
    if (TraceField(line, "span_id", 0.0) == 1.0) root_us = dur_us;
    Bucket& by_cat = categories[cat];
    ++by_cat.count;
    by_cat.total_us += dur_us;
    by_cat.max_us = std::max(by_cat.max_us, dur_us);
    if (cat != "wait") continue;
    Bucket& bucket = waits[name];
    ++bucket.count;
    bucket.total_us += dur_us;
    bucket.max_us = std::max(bucket.max_us, dur_us);
  }
  if (spans == 0) {
    std::fprintf(stderr, "error: no trace events in '%s'\n", path.c_str());
    return 1;
  }
  std::printf("request %lld: %lld span(s), root %s\n", request_id,
              static_cast<long long>(spans),
              HumanSeconds(root_us * 1e-6).c_str());
  std::printf("--- by category ---\n");
  for (const auto& [cat, b] : categories) {
    std::printf("  %-10s %6lld span(s)  total %-9s max %s\n", cat.c_str(),
                static_cast<long long>(b.count),
                HumanSeconds(b.total_us * 1e-6).c_str(),
                HumanSeconds(b.max_us * 1e-6).c_str());
  }
  if (waits.empty()) {
    std::printf("no wait spans (nothing blocked for >%.0fus)\n",
                kWaitSpanFloorUs);
    return 0;
  }
  std::vector<std::pair<std::string, Bucket>> ranked(waits.begin(),
                                                     waits.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::printf("--- top wait sources ---\n");
  for (const auto& [name, b] : ranked) {
    std::printf("  %-18s %6lld wait(s)  total %-9s max %-9s %s of request\n",
                name.c_str(), static_cast<long long>(b.count),
                HumanSeconds(b.total_us * 1e-6).c_str(),
                HumanSeconds(b.max_us * 1e-6).c_str(),
                root_us > 0.0
                    ? StringFormat("%.1f%%", 100.0 * b.total_us / root_us)
                          .c_str()
                    : "?");
  }
  return 0;
}

/// --stats / --metrics-out epilogue shared by run and serve.
int EmitTelemetry(bool show_stats, const std::string& metrics_out,
                  const CostAuditRecord* audit,
                  const CompiledProgram* program = nullptr) {
  if (show_stats) {
    if (program != nullptr) {
      std::printf("--- multiply layouts ---\n");
      PrintMultiplyLayouts(program->statements);
    }
    MetricsRegistry& registry = MetricsRegistry::Global();
    std::printf("--- fusion ---\n");
    std::printf(
        "  regions formed     %lld\n  ops fused          %lld\n"
        "  bytes avoided      %lld\n  in-place regions   %lld\n",
        static_cast<long long>(
            registry.GetCounter("remac.fusion.regions")->Value()),
        static_cast<long long>(
            registry.GetCounter("remac.fusion.ops_fused")->Value()),
        static_cast<long long>(
            registry.GetCounter("remac.fusion.bytes_avoided")->Value()),
        static_cast<long long>(
            registry.GetCounter("remac.fusion.in_place_hits")->Value()));
    std::printf("--- telemetry ---\n");
    if (audit != nullptr) std::printf("%s", audit->ToString().c_str());
    std::printf("%s\n", MetricsRegistry::Global().ToJson().c_str());
  }
  if (!metrics_out.empty()) {
    if (Status st = MetricsRegistry::Global().WriteToFile(metrics_out);
        !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];

  if (command == "datasets") {
    std::printf("%-8s %10s %9s %12s  %s\n", "name", "rows", "cols",
                "sparsity", "zipf");
    for (const DatasetSpec& spec : PaperDatasetSpecs()) {
      std::printf("%-8s %10lld %9lld %12.2e  %.1f/%.1f\n", spec.name.c_str(),
                  static_cast<long long>(spec.rows),
                  static_cast<long long>(spec.cols), spec.sparsity,
                  spec.zipf_rows, spec.zipf_cols);
    }
    std::printf("plus zipf-<exponent> (cri2-shaped, e.g. zipf-1.4)\n");
    return 0;
  }

  if (command == "trace") {
    if (argc != 3) return Usage();
    return TraceSummary(argv[2]);
  }

  if (command == "gen") {
    if (argc != 4) return Usage();
    DataCatalog catalog;
    if (Status st = RegisterNamedDataset(&catalog, argv[2]); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    auto value = catalog.Value(argv[2]);
    if (Status st = WriteMatrixMarket(argv[3], value.value()); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", argv[3]);
    return 0;
  }

  if (command != "run" && command != "compile" && command != "serve") {
    return Usage();
  }
  if (argc < 3) return Usage();
  const std::string script_path = argv[2];

  DataCatalog catalog;
  RunConfig config;
  bool print_plan = false;
  std::string dot_path;
  std::vector<std::string> print_vars;
  int repeat = command == "serve" ? 8 : 0;
  size_t cache_size = 64;
  long long mat_cache_mb = 256;
  bool show_stats = false;
  std::string metrics_out;
  std::string trace_dir;
  double deadline_seconds = 0.0;
  double backlog_factor = 8.0;
  bool coalesce = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    Status st;
    if (arg == "--data") {
      const char* value = next();
      if (value == nullptr) return Usage();
      const std::string spec = value;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage();
      auto m = ReadMatrixMarket(spec.substr(eq + 1));
      if (!m.ok()) {
        std::fprintf(stderr, "error: %s\n", m.status().ToString().c_str());
        return 1;
      }
      catalog.Register(spec.substr(0, eq), std::move(m).value());
    } else if (arg == "--dataset") {
      const char* value = next();
      if (value == nullptr) return Usage();
      st = RegisterNamedDataset(&catalog, value);
    } else if (arg == "--optimizer") {
      const char* value = next();
      if (value == nullptr) return Usage();
      auto kind = ParseOptimizer(value);
      if (kind.ok()) config.optimizer = kind.value();
      st = kind.status();
    } else if (arg == "--estimator") {
      const char* value = next();
      if (value == nullptr) return Usage();
      auto kind = ParseEstimator(value);
      if (kind.ok()) config.estimator = kind.value();
      st = kind.status();
    } else if (arg == "--engine") {
      const char* value = next();
      if (value == nullptr) return Usage();
      auto kind = ParseEngine(value);
      if (kind.ok()) config.engine = kind.value();
      st = kind.status();
    } else if (arg == "--iterations") {
      const char* value = next();
      if (value == nullptr) return Usage();
      config.max_iterations = std::atoi(value);
    } else if (arg == "--repeat") {
      const char* value = next();
      if (value == nullptr) return Usage();
      repeat = std::atoi(value);
      if (repeat <= 0) {
        std::fprintf(stderr, "--repeat expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--cache-size") {
      const char* value = next();
      if (value == nullptr) return Usage();
      const int entries = std::atoi(value);
      if (entries <= 0) {
        std::fprintf(stderr, "--cache-size expects a positive integer\n");
        return 2;
      }
      cache_size = static_cast<size_t>(entries);
    } else if (arg == "--mat-cache-mb") {
      const char* value = next();
      if (value == nullptr) return Usage();
      mat_cache_mb = std::atoll(value);
      if (mat_cache_mb < 0) {
        std::fprintf(stderr,
                     "--mat-cache-mb expects a non-negative integer "
                     "(0 disables the intermediate cache)\n");
        return 2;
      }
    } else if (arg == "--threads") {
      const char* value = next();
      if (value == nullptr) return Usage();
      const int threads = std::atoi(value);
      if (threads <= 0) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        return 2;
      }
      SetKernelThreads(threads);
      ThreadPool::SetGlobalThreads(threads);
      config.pool_threads = threads;
    } else if (arg == "--chaos") {
      const char* value = next();
      if (value == nullptr) return Usage();
      config.faults = FaultPlan::Chaos(
          static_cast<uint64_t>(std::strtoull(value, nullptr, 10)));
      // Faults only exist on the task-graph path; the serial executor is
      // the fault-free reference.
      config.scheduler = SchedulerKind::kTaskGraph;
      std::fprintf(stderr, "[remac] chaos: %s\n",
                   config.faults.ToString().c_str());
    } else if (arg == "--deadline") {
      const char* value = next();
      if (value == nullptr) return Usage();
      deadline_seconds = std::atof(value);
      if (deadline_seconds <= 0.0) {
        std::fprintf(stderr, "--deadline expects a positive number\n");
        return 2;
      }
    } else if (arg == "--backlog") {
      const char* value = next();
      if (value == nullptr) return Usage();
      backlog_factor = std::atof(value);
      if (backlog_factor < 0.0) {
        std::fprintf(stderr,
                     "--backlog expects a non-negative factor "
                     "(0 disables backlog shedding)\n");
        return 2;
      }
    } else if (arg == "--coalesce") {
      coalesce = true;
    } else if (arg == "--dist2d") {
      const char* value = next();
      if (value == nullptr) return Usage();
      auto mode = ParseDist2D(value);
      if (!mode.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     mode.status().ToString().c_str());
        return 2;
      }
      config.cluster.dist2d = mode.value();
    } else if (arg == "--no-fuse") {
      config.fuse_elementwise = false;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--metrics-out") {
      const char* value = next();
      if (value == nullptr) return Usage();
      metrics_out = value;
    } else if (arg == "--trace-dir") {
      const char* value = next();
      if (value == nullptr) return Usage();
      trace_dir = value;
    } else if (arg == "--print-plan") {
      print_plan = true;
    } else if (arg == "--dot") {
      const char* value = next();
      if (value == nullptr) return Usage();
      dot_path = value;
    } else if (arg == "--print") {
      const char* value = next();
      if (value == nullptr) return Usage();
      print_vars.push_back(value);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage();
    }
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::ifstream script_file(script_path);
  if (!script_file) {
    std::fprintf(stderr, "error: cannot open '%s'\n", script_path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << script_file.rdbuf();

  if (repeat > 0 && command != "compile") {
    // Serve mode: route every request through the plan service. The
    // first request is cold (parse + optimize + execute); repeats hit
    // the fingerprinted plan cache and skip straight to execution.
    ServiceOptions options;
    options.cache_capacity = cache_size;
    options.mat_cache_bytes = static_cast<int64_t>(mat_cache_mb) << 20;
    options.admission_backlog_factor = backlog_factor;
    options.coalesce_warm_hits = coalesce;
    PlanService service(&catalog, options);
    if (!trace_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(trace_dir, ec);
      if (ec) {
        std::fprintf(stderr, "error: cannot create trace dir '%s': %s\n",
                     trace_dir.c_str(), ec.message().c_str());
        return 1;
      }
      Tracer::Global().SetEnabled(true);
    }
    ServiceRequest request{source.str(), config, deadline_seconds};
    Result<ServiceReport> last = Status::Internal("no requests ran");
    std::printf(
        "serving %d request(s), plan cache capacity %zu, "
        "intermediate cache %s\n",
        repeat, cache_size,
        mat_cache_mb > 0
            ? HumanBytes(static_cast<double>(options.mat_cache_bytes))
                  .c_str()
            : "off");
    auto last_metrics_write = std::chrono::steady_clock::time_point{};
    for (int k = 0; k < repeat; ++k) {
      last = service.Run(request);
      if (!last.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     last.status().ToString().c_str());
        return 1;
      }
      const ServiceReport& r = last.value();
      std::printf(
          "#%-3d %-4s parse %-9s optimize %-9s execute %-9s total %s%s%s\n",
          k + 1, r.cache_hit ? "warm" : "cold",
          HumanSeconds(r.timing.parse_seconds).c_str(),
          HumanSeconds(r.timing.optimize_seconds).c_str(),
          HumanSeconds(r.timing.execute_seconds).c_str(),
          HumanSeconds(r.timing.total_seconds).c_str(),
          r.degraded ? "  DEGRADED: " : "",
          r.degraded ? r.degraded_reason.c_str() : "");
      if (!trace_dir.empty() && r.trace != nullptr) {
        const std::string trace_path =
            trace_dir + "/trace-" +
            std::to_string(r.trace->request_id()) + ".json";
        if (Status st = r.trace->WriteChromeJson(trace_path); !st.ok()) {
          std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        }
      }
      if (!metrics_out.empty()) {
        // Periodic refresh: keep the file fresh while the service runs,
        // but at most once a second — a hot request stream should not
        // turn the metrics file into a write bottleneck. The write
        // itself is atomic (temp file + rename), so a scraper never
        // sees a torn snapshot; EmitTelemetry writes the final state.
        const auto now = std::chrono::steady_clock::now();
        if (now - last_metrics_write >= std::chrono::seconds(1)) {
          (void)MetricsRegistry::Global().WriteToFile(metrics_out);
          last_metrics_write = now;
        }
      }
    }
    if (!trace_dir.empty()) {
      std::printf("traces: %s/trace-<request_id>.json (summarize with "
                  "`remac trace FILE`)\n",
                  trace_dir.c_str());
    }

    const ServiceStats stats = service.stats();
    std::printf("--- cache stats ---\n");
    std::printf(
        "%-14s %8s %8s %10s %13s %9s %10s\n", "", "hits", "misses",
        "evictions", "invalidations", "entries", "resident");
    std::printf(
        "%-14s %8lld %8lld %10lld %13lld %6lld/%-2zu %10s\n", "plan cache",
        static_cast<long long>(stats.cache.hits),
        static_cast<long long>(stats.cache.misses),
        static_cast<long long>(stats.cache.evictions),
        static_cast<long long>(stats.cache.invalidations),
        static_cast<long long>(stats.cache.entries), cache_size,
        HumanBytes(static_cast<double>(stats.cache.resident_bytes)).c_str());
    if (mat_cache_mb > 0) {
      std::printf(
          "%-14s %8lld %8lld %10lld %13lld %9lld %10s\n", "intermediates",
          static_cast<long long>(stats.matcache.hits),
          static_cast<long long>(stats.matcache.misses),
          static_cast<long long>(stats.matcache.evictions),
          static_cast<long long>(stats.matcache.invalidations),
          static_cast<long long>(stats.matcache.entries),
          HumanBytes(static_cast<double>(stats.matcache.resident_bytes))
              .c_str());
      std::printf(
          "intermediates: admits %lld  rejects %lld  flight waits %lld  "
          "flops saved %.3g\n",
          static_cast<long long>(stats.matcache.admits),
          static_cast<long long>(stats.matcache.rejects),
          static_cast<long long>(stats.matcache.flight_waits),
          stats.matcache.flops_saved);
    }
    std::printf("optimizer invocations: %lld (of %lld requests)\n",
                static_cast<long long>(stats.optimizer_invocations),
                static_cast<long long>(stats.requests));
    if (stats.degraded_requests > 0) {
      std::printf("degraded requests: %lld (shed %lld)\n",
                  static_cast<long long>(stats.degraded_requests),
                  static_cast<long long>(stats.shed_requests));
    }
    if (stats.coalesced_requests > 0) {
      std::printf("coalesced requests: %lld\n",
                  static_cast<long long>(stats.coalesced_requests));
    }
    const double cold_mean =
        stats.cold_requests > 0 ? stats.cold_seconds / stats.cold_requests
                                : 0.0;
    const double warm_mean =
        stats.warm_requests > 0 ? stats.warm_seconds / stats.warm_requests
                                : 0.0;
    std::printf("cold: %lld request(s), mean %s\n",
                static_cast<long long>(stats.cold_requests),
                HumanSeconds(cold_mean).c_str());
    std::printf("warm: %lld request(s), mean %s",
                static_cast<long long>(stats.warm_requests),
                HumanSeconds(warm_mean).c_str());
    if (warm_mean > 0.0 && cold_mean > 0.0) {
      std::printf("  (%.1fx speedup)", cold_mean / warm_mean);
    }
    std::printf("\n");
    std::printf("exec lane: %d thread(s), %lld task(s), %lld steal(s), "
                "peak queue depth %lld\n",
                stats.pool.threads,
                static_cast<long long>(stats.pool.tasks_executed),
                static_cast<long long>(stats.pool.steals),
                static_cast<long long>(stats.pool.peak_queue_depth));
    std::printf("request lane: %d thread(s), %lld task(s), %lld steal(s), "
                "peak queue depth %lld\n",
                stats.request_pool.threads,
                static_cast<long long>(stats.request_pool.tasks_executed),
                static_cast<long long>(stats.request_pool.steals),
                static_cast<long long>(stats.request_pool.peak_queue_depth));

    const ServiceReport& r = last.value();
    if (print_plan) {
      std::printf("--- optimized program ---\n%s",
                  r.run.optimized_source.c_str());
    }
    if (!dot_path.empty() && r.run.optimized_program != nullptr) {
      std::ofstream dot_file(dot_path);
      dot_file << ProgramToDot(*r.run.optimized_program);
      std::printf("wrote %s\n", dot_path.c_str());
    }
    for (const std::string& var : print_vars) {
      auto it = r.run.env.find(var);
      if (it == r.run.env.end()) {
        std::fprintf(stderr, "no variable '%s'\n", var.c_str());
        continue;
      }
      PrintValue(var, it->second);
    }
    return EmitTelemetry(show_stats, metrics_out, &r.run.audit,
                         r.run.optimized_program.get());
  }

  auto run = command == "run"
                 ? RunScript(source.str(), catalog, config)
                 : CompileOnly(source.str(), catalog, config);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("optimizer: %s (estimator %s, engine %s)\n",
              OptimizerKindName(config.optimizer),
              EstimatorKindName(config.estimator),
              EngineKindName(config.engine));
  std::printf("compile:   %s wall", HumanSeconds(run->compile_wall_seconds).c_str());
  if (run->optimize.options_found > 0 || run->optimize.applied_cse > 0) {
    std::printf(" — %d options found, %d CSE + %d LSE + %d cross-block applied",
                run->optimize.options_found, run->optimize.applied_cse,
                run->optimize.applied_lse,
                run->optimize.applied_cross_block);
  }
  std::printf("\n");
  if (command == "run") {
    std::printf("simulated: %s\n", run->breakdown.ToString().c_str());
    if (run->schedule.chaos) {
      std::printf("chaos:     %s\n", run->schedule.ToString().c_str());
    }
  }
  if (print_plan) {
    std::printf("--- optimized program ---\n%s", run->optimized_source.c_str());
  }
  if (!dot_path.empty() && run->optimized_program != nullptr) {
    std::ofstream dot_file(dot_path);
    dot_file << ProgramToDot(*run->optimized_program);
    std::printf("wrote %s (render with: dot -Tsvg %s -o plan.svg)\n",
                dot_path.c_str(), dot_path.c_str());
  }
  for (const std::string& var : print_vars) {
    auto it = run->env.find(var);
    if (it == run->env.end()) {
      std::fprintf(stderr, "no variable '%s'\n", var.c_str());
      continue;
    }
    PrintValue(var, it->second);
  }
  return EmitTelemetry(show_stats, metrics_out,
                       command == "run" ? &run->audit : nullptr,
                       run->optimized_program.get());
}

}  // namespace
}  // namespace remac

int main(int argc, char** argv) { return remac::Main(argc, argv); }
