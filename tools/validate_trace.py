#!/usr/bin/env python3
"""Validate per-request Chrome-trace files emitted by the serving tier.

Usage:
    validate_trace.py TRACE.json [TRACE.json ...]

Each file is one request's span tree, written by RequestTrace
(src/obs/trace_context.h) via `remac serve --trace-dir` or
bench_load --trace-dir=DIR:

    {"remac": {"request_id": N, "dropped": N},
     "traceEvents": [ {"name": ..., "cat": ..., "ph": "X", "pid": 0,
                       "tid": T, "ts": ..., "dur": ...,
                       "args": {"span_id": I, "parent": P,
                                "request_id": N}}, ... ]}

Checks per file:
  1. well-formed JSON with a non-empty traceEvents list of complete
     "X" (duration) events carrying numeric ts/dur and span identity;
  2. exactly one root span: span_id 1 with parent 0;
  3. the spans form a tree rooted at span 1 — every parent id exists,
     no span is its own ancestor (skipped when spans were dropped at
     the per-request cap, which the header records in remac.dropped);
  4. interval containment: every child's [ts, ts+dur] lies within its
     parent's interval, and child duration <= parent duration, up to a
     rounding epsilon (timestamps are serialized at %.3f us).

Exit status: 0 when every file passes, 1 otherwise.
"""

import json
import sys

# %.3f serialization rounds each endpoint by up to 0.5e-3 us; parent and
# child round independently, so allow a couple of microseconds.
EPSILON_US = 2.0


def fail(path, message):
    print(f"FAIL {path}: {message}", file=sys.stderr)
    return False


def validate(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable trace: {err}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    header = doc.get("remac")
    if not isinstance(header, dict) or "request_id" not in header:
        return fail(path, "missing remac header with request_id")
    dropped = header.get("dropped", 0)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "traceEvents missing or empty")

    spans = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            return fail(path, f"{where}: not an object")
        if event.get("ph") != "X":
            return fail(path, f"{where}: ph is not 'X'")
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                return fail(path, f"{where}: {key} is not numeric")
        if event["dur"] < 0:
            return fail(path, f"{where}: negative dur")
        args = event.get("args")
        if not isinstance(args, dict):
            return fail(path, f"{where}: missing args")
        for key in ("span_id", "parent", "request_id"):
            if not isinstance(args.get(key), int):
                return fail(path, f"{where}: args.{key} is not an integer")
        if args["request_id"] != header["request_id"]:
            return fail(path, f"{where}: request_id mismatch")
        span_id = args["span_id"]
        if span_id in spans:
            return fail(path, f"{where}: duplicate span_id {span_id}")
        spans[span_id] = {
            "parent": args["parent"],
            "start": event["ts"],
            "end": event["ts"] + event["dur"],
            "dur": event["dur"],
            "name": event.get("name", "?"),
        }

    roots = [i for i, s in spans.items() if s["parent"] == 0]
    if roots != [1]:
        return fail(path, f"expected exactly root span 1, found {roots}")

    if dropped:
        # Spans past the per-request cap were discarded, so parents may
        # legitimately be missing; tree checks would report false
        # breakage.
        return True

    for span_id, span in spans.items():
        if span_id == 1:
            continue
        parent = span["parent"]
        if parent not in spans:
            return fail(
                path,
                f"span {span_id} ({span['name']}) has unknown parent "
                f"{parent}",
            )
        # Walk to the root to reject cycles; span ids are bounded so the
        # walk terminates or revisits.
        seen = {span_id}
        cursor = parent
        while cursor != 1:
            if cursor in seen or cursor not in spans:
                return fail(path, f"span {span_id}: broken ancestry")
            seen.add(cursor)
            cursor = spans[cursor]["parent"]
        up = spans[parent]
        if span["start"] < up["start"] - EPSILON_US or span["end"] > up[
            "end"
        ] + EPSILON_US:
            return fail(
                path,
                f"span {span_id} ({span['name']}) "
                f"[{span['start']:.3f}, {span['end']:.3f}] escapes parent "
                f"{parent} [{up['start']:.3f}, {up['end']:.3f}]",
            )
        if span["dur"] > up["dur"] + EPSILON_US:
            return fail(
                path,
                f"span {span_id} ({span['name']}) dur {span['dur']:.3f} "
                f"exceeds parent {parent} dur {up['dur']:.3f}",
            )
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        if validate(path):
            print(f"OK   {path}")
        else:
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
