#!/usr/bin/env python3
"""Validate the telemetry block emitted by a bench run.

Usage:
    validate_metrics.py --manifest tools/metrics_manifest.txt BENCH_OUTPUT

BENCH_OUTPUT is the stdout of a bench binary run with --json: a mix of
human-readable lines and JSON lines, the last JSON line being
{"metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}}
(the block registered by bench/harness.h at exit).

Checks:
  1. a metrics block exists and is well-formed (counters are integers,
     gauges are numbers, histograms have count/sum/buckets with a +Inf
     overflow bucket);
  2. every metric in the manifest is present with the declared type;
  3. metrics present but absent from the manifest are reported (as a
     reminder to extend the committed manifest) without failing.

Exit status: 0 on success, 1 on any failure.
"""

import argparse
import json
import numbers
import sys


def load_manifest(path):
    expected = {}  # name -> type
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                raise SystemExit(
                    f"{path}:{lineno}: expected '<counter|gauge|histogram> "
                    f"<name>', got: {line}"
                )
            expected[parts[1]] = parts[0]
    return expected


def find_metrics_block(path):
    """Last JSON line carrying a 'metrics' object wins."""
    block = None
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line.startswith("{"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and isinstance(
                record.get("metrics"), dict
            ):
                block = record["metrics"]
    return block


def check_wellformed(metrics, errors):
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            errors.append(f"metrics block has no '{section}' object")
    for name, value in metrics.get("counters", {}).items():
        if not isinstance(value, int):
            errors.append(f"counter {name} is not an integer: {value!r}")
    for name, value in metrics.get("gauges", {}).items():
        if not isinstance(value, numbers.Real):
            errors.append(f"gauge {name} is not a number: {value!r}")
    for name, hist in metrics.get("histograms", {}).items():
        if not isinstance(hist, dict):
            errors.append(f"histogram {name} is not an object")
            continue
        if not isinstance(hist.get("count"), int):
            errors.append(f"histogram {name} has no integer 'count'")
        if not isinstance(hist.get("sum"), numbers.Real):
            errors.append(f"histogram {name} has no numeric 'sum'")
        buckets = hist.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            errors.append(f"histogram {name} has no 'buckets' array")
            continue
        if buckets[-1].get("le") != "+Inf":
            errors.append(f"histogram {name} lacks the +Inf overflow bucket")
        total = sum(b.get("count", 0) for b in buckets)
        if total != hist.get("count"):
            errors.append(
                f"histogram {name}: bucket counts sum to {total}, "
                f"'count' says {hist.get('count')}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--manifest", required=True)
    parser.add_argument("bench_output")
    args = parser.parse_args()

    expected = load_manifest(args.manifest)
    metrics = find_metrics_block(args.bench_output)
    if metrics is None:
        print(
            f"FAIL: no {{\"metrics\": ...}} JSON line in {args.bench_output} "
            "(was the bench run with --json?)"
        )
        return 1

    errors = []
    check_wellformed(metrics, errors)

    section_of = {
        "counter": "counters",
        "gauge": "gauges",
        "histogram": "histograms",
    }
    present = {
        name: kind
        for kind, section in section_of.items()
        for name in metrics.get(section, {})
    }
    for name, kind in sorted(expected.items()):
        if name not in present:
            errors.append(f"manifest metric missing from output: {kind} {name}")
        elif present[name] != kind:
            errors.append(
                f"metric {name}: manifest says {kind}, output has "
                f"{present[name]}"
            )

    unlisted = sorted(set(present) - set(expected))
    if unlisted:
        print(
            f"note: {len(unlisted)} metric(s) not in the manifest "
            "(consider adding them to tools/metrics_manifest.txt):"
        )
        for name in unlisted:
            print(f"  {present[name]} {name}")

    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        return 1

    print(
        f"OK: {len(expected)} manifest metrics present, "
        f"{len(present)} total registered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
