#!/usr/bin/env python3
"""Saturation scaling gate over BENCH_service.json.

Re-applies bench_load's hardware-aware scaling rule to the recorded
saturation curve, so check.sh fails when a benchmark record shows the
serving tier collapsing as threads grow:

  * across transitions that add EFFECTIVE parallelism
    (min(threads, cores) increases), saturated throughput must be
    monotone non-decreasing within a 0.90 slack factor;
  * when the recording machine had >= 4 cores, 4-thread saturated
    throughput must reach 1.8x the 1-thread figure;
  * transitions past the core count are oversubscription — the OS
    scheduler owns throughput there — and are reported, not gated.

Usage: check_scaling.py BENCH_service.json
"""

import json
import sys

SLACK = 0.90
SPEEDUP_FLOOR_4T = 1.8


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1], "r", encoding="utf-8") as fh:
        record = json.load(fh)

    saturation = record.get("saturation", [])
    if len(saturation) < 2:
        print(f"FAIL: saturation curve has {len(saturation)} point(s); "
              "expected the 1/2/4/8-thread sweep", file=sys.stderr)
        return 1
    cores = int(record.get("cores", 1))

    failures = []
    for prev, cur in zip(saturation, saturation[1:]):
        eff_prev = min(int(prev["threads"]), cores)
        eff_cur = min(int(cur["threads"]), cores)
        if eff_cur <= eff_prev:
            print(f"  info: {prev['threads']}T -> {cur['threads']}T is "
                  f"oversubscribed on {cores} core(s); not gated")
            continue
        if cur["throughput_rps"] < SLACK * prev["throughput_rps"]:
            failures.append(
                f"saturated throughput collapsed {prev['threads']}T "
                f"{prev['throughput_rps']:.1f} -> {cur['threads']}T "
                f"{cur['throughput_rps']:.1f} req/s (floor {SLACK:.2f}x)")

    by_threads = {int(p["threads"]): p["throughput_rps"] for p in saturation}
    if cores >= 4 and 1 in by_threads and 4 in by_threads:
        speedup = by_threads[4] / by_threads[1]
        if speedup < SPEEDUP_FLOOR_4T:
            failures.append(
                f"4T saturated throughput is only {speedup:.2f}x the 1T "
                f"figure on a {cores}-core machine "
                f"(floor {SPEEDUP_FLOOR_4T}x)")

    if record.get("scaling_ok") is False:
        failures.append("bench_load recorded scaling_ok=false")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    curve = "  ".join(f"{p['threads']}T {p['throughput_rps']:.1f}"
                      for p in saturation)
    print(f"scaling gate ok ({cores} core(s)): {curve} req/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
