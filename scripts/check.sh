#!/usr/bin/env bash
# Concurrency + telemetry checks, three gates:
#
#   tsan        build with -DREMAC_SANITIZE=thread and run the concurrent
#               suites (pool, ledger, task graph, plan service, metrics
#               registry) under ThreadSanitizer
#   asan        the same suites under AddressSanitizer
#   ubsan       the same suites under UndefinedBehaviorSanitizer
#   bench-smoke one quick benchmark with --json, validating the emitted
#               metrics block against tools/metrics_manifest.txt, then the
#               bench_kernels perf gate (blocked GEMM, fused
#               transpose-multiply and elementwise-fusion speedup floors;
#               writes BENCH_kernels.json), then the bench_service
#               intermediate-reuse gate (matcache serving >= 2x faster
#               than per-session recompute), then the bench_load serving
#               gate (open-loop Zipf load sweep writing
#               BENCH_service.json; tracing on-vs-off bitwise identity;
#               emitted span trees checked by tools/validate_trace.py;
#               the recorded saturation curve re-gated by
#               tools/check_scaling.py so throughput may not collapse as
#               effective parallelism grows),
#               then the bench_distributed 2D-layout gate (SUMMA must
#               beat 1D on ledger bytes for at least one sparse/skewed
#               program with bitwise-identical results; writes
#               BENCH_dist2d.json)
#
# Usage: scripts/check.sh [tsan-build-dir] [asan-build-dir] \
#                         [bench-build-dir] [ubsan-build-dir]
#        (defaults: build-tsan build-asan build build-ubsan)
#
# A build dir whose CMake cache was configured with a different
# REMAC_SANITIZE value is rejected up front — delete it and rerun rather
# than letting a stale cache produce an unsanitized "sanitizer" binary.

set -uo pipefail
cd "$(dirname "$0")/.."

TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"
BENCH_DIR="${3:-build}"
UBSAN_DIR="${4:-build-ubsan}"
FILTER='ThreadPool.*:LanePool.*:Ledger.*:TaskGraph.*:Sched*.*:Kernels*.*:Fingerprint*.*:PlanCache*.*:Service*.*:Admission*.*:MatCache*.*:MatrixBytes.*:Obs*.*:Chaos*.*:Fault*.*:Trace*.*:Contention*.*:Fusion*.*'

GATES=()
RESULTS=()

record() {  # record GATE pass|fail
  GATES+=("$1")
  RESULTS+=("$2")
  if [[ "$2" == pass ]]; then
    echo "== gate $1: PASS =="
  else
    echo "== gate $1: FAIL ==" >&2
  fi
}

# Fail fast if `dir` was configured with a REMAC_SANITIZE value other than
# `want` ("" for a plain build): reconfiguring over a stale cache keeps the
# old compile flags and silently runs the wrong binary.
require_cache() {
  local dir="$1" want="$2"
  [[ -e "$dir" ]] || return 0
  if [[ ! -f "$dir/CMakeCache.txt" ]]; then
    echo "error: '$dir' exists but has no CMakeCache.txt — not a CMake" \
         "build dir. Remove it (rm -rf '$dir') and rerun." >&2
    return 1
  fi
  local have
  have="$(sed -n 's/^REMAC_SANITIZE:[^=]*=//p' "$dir/CMakeCache.txt" | head -1)"
  if [[ "$have" != "$want" ]]; then
    echo "error: '$dir' was configured with REMAC_SANITIZE='$have'," \
         "this gate needs '$want'. Remove it (rm -rf '$dir') and rerun." >&2
    return 1
  fi
}

sanitizer_gate() {  # sanitizer_gate NAME DIR SANITIZE_VALUE ENV_VAR
  local name="$1" dir="$2" value="$3" env_var="$4"
  require_cache "$dir" "$value" || return 1
  cmake -B "$dir" -S . -DREMAC_SANITIZE="$value" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo || return 1
  cmake --build "$dir" -j --target remac_tests || return 1
  echo "== running concurrent suites under $name =="
  env "$env_var=${!env_var:-halt_on_error=1}" \
    "$dir/tests/remac_tests" --gtest_filter="$FILTER"
}

bench_smoke_gate() {
  require_cache "$BENCH_DIR" "" || return 1
  cmake -B "$BENCH_DIR" -S . || return 1
  cmake --build "$BENCH_DIR" -j --target bench_smoke || return 1
  local bin="$BENCH_DIR/bench/bench_smoke"
  if [[ ! -x "$bin" ]]; then
    bin="$(find "$BENCH_DIR" -name bench_smoke -type f | head -1)"
  fi
  if [[ -z "$bin" ]]; then
    echo "error: bench_smoke binary not found under '$BENCH_DIR'" >&2
    return 1
  fi
  local out="$BENCH_DIR/bench_smoke.out"
  "$bin" --quick --json | tee "$out" || return 1
  python3 tools/validate_metrics.py --manifest tools/metrics_manifest.txt \
    "$out" || return 1
  # Kernel perf gate: bench_kernels exits non-zero when the blocked GEMM,
  # fused transpose-multiply, or elementwise-fusion speedup falls below
  # its floor (the manifest validation above stays on bench_smoke output,
  # which runs the full pipeline and therefore registers every manifest
  # metric).
  cmake --build "$BENCH_DIR" -j --target bench_kernels || return 1
  local kbin="$BENCH_DIR/bench/bench_kernels"
  if [[ ! -x "$kbin" ]]; then
    kbin="$(find "$BENCH_DIR" -name bench_kernels -type f | head -1)"
  fi
  if [[ -z "$kbin" ]]; then
    echo "error: bench_kernels binary not found under '$BENCH_DIR'" >&2
    return 1
  fi
  "$kbin" --quick --json | tee "$BENCH_DIR/bench_kernels.out" || return 1
  # Intermediate-reuse perf gate: bench_service exits non-zero when
  # serving a shared chain from the matcache is less than 2x faster than
  # recomputing it per session (writes BENCH_service.json).
  cmake --build "$BENCH_DIR" -j --target bench_service || return 1
  local sbin="$BENCH_DIR/bench/bench_service"
  if [[ ! -x "$sbin" ]]; then
    sbin="$(find "$BENCH_DIR" -name bench_service -type f | head -1)"
  fi
  if [[ -z "$sbin" ]]; then
    echo "error: bench_service binary not found under '$BENCH_DIR'" >&2
    return 1
  fi
  "$sbin" --quick --json | tee "$BENCH_DIR/bench_service.out" || return 1
  # Serving-tier load gate: bench_load drives the open-loop Zipf workload
  # (writes BENCH_service.json), exits non-zero when tracing perturbs
  # results (bitwise on-vs-off identity), and emits per-request span
  # trees that validate_trace.py checks for rooted-tree integrity
  # (every parent exists, child intervals and durations within the
  # parent's).
  cmake --build "$BENCH_DIR" -j --target bench_load || return 1
  local lbin="$BENCH_DIR/bench/bench_load"
  if [[ ! -x "$lbin" ]]; then
    lbin="$(find "$BENCH_DIR" -name bench_load -type f | head -1)"
  fi
  if [[ -z "$lbin" ]]; then
    echo "error: bench_load binary not found under '$BENCH_DIR'" >&2
    return 1
  fi
  local trace_dir="$BENCH_DIR/bench_load_traces"
  rm -rf "$trace_dir" && mkdir -p "$trace_dir"
  "$lbin" --quick --json --trace-dir="$trace_dir" \
    | tee "$BENCH_DIR/bench_load.out" || return 1
  python3 tools/validate_trace.py "$trace_dir"/trace-*.json || return 1
  # Saturation scaling gate: re-apply bench_load's hardware-aware rule to
  # the BENCH_service.json it just wrote, so a recorded curve that
  # collapses as effective parallelism grows fails the check on its own
  # gate line even when bench_load's exit code is swallowed upstream.
  python3 tools/check_scaling.py BENCH_service.json || return 1
  # 2D-layout gate: bench_distributed exits non-zero unless the 2D tiled
  # SUMMA path moves strictly fewer TransmissionLedger bytes than forced
  # 1D on at least one sparse/skewed program, with bitwise-identical
  # results (writes BENCH_dist2d.json).
  cmake --build "$BENCH_DIR" -j --target bench_distributed || return 1
  local dbin="$BENCH_DIR/bench/bench_distributed"
  if [[ ! -x "$dbin" ]]; then
    dbin="$(find "$BENCH_DIR" -name bench_distributed -type f | head -1)"
  fi
  if [[ -z "$dbin" ]]; then
    echo "error: bench_distributed binary not found under '$BENCH_DIR'" >&2
    return 1
  fi
  "$dbin" --quick --json | tee "$BENCH_DIR/bench_distributed.out"
}

if sanitizer_gate ThreadSanitizer "$TSAN_DIR" thread TSAN_OPTIONS; then
  record tsan pass
else
  record tsan fail
fi

if sanitizer_gate AddressSanitizer "$ASAN_DIR" address ASAN_OPTIONS; then
  record asan pass
else
  record asan fail
fi

if sanitizer_gate UndefinedBehaviorSanitizer "$UBSAN_DIR" undefined \
     UBSAN_OPTIONS; then
  record ubsan pass
else
  record ubsan fail
fi

if bench_smoke_gate; then
  record bench-smoke pass
else
  record bench-smoke fail
fi

echo
echo "== summary =="
status=0
for i in "${!GATES[@]}"; do
  printf '%-12s %s\n' "${GATES[$i]}" "${RESULTS[$i]}"
  [[ "${RESULTS[$i]}" == pass ]] || status=1
done
exit $status
