#!/usr/bin/env bash
# Concurrency check: build the ThreadSanitizer and AddressSanitizer
# configurations and run the concurrent suites under them. The task-graph
# executor, the shared thread pool, the thread-safe ledger and the plan
# service (sharded cache + single-flight) are the concurrent parts of the
# codebase, so these are the suites that must stay sanitizer-clean.
#
# Usage: scripts/check.sh [tsan-build-dir] [asan-build-dir]
#        (defaults: build-tsan build-asan)

set -euo pipefail
cd "$(dirname "$0")/.."

TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"
FILTER='ThreadPool.*:Ledger.*:TaskGraph.*:Sched*.*:Kernels*.*:Fingerprint*.*:PlanCache*.*:Service*.*'

cmake -B "$TSAN_DIR" -S . -DREMAC_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j --target remac_tests

echo "== running scheduler/kernel/service tests under ThreadSanitizer =="
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  "$TSAN_DIR/tests/remac_tests" --gtest_filter="$FILTER"

echo "== TSan check passed =="

cmake -B "$ASAN_DIR" -S . -DREMAC_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j --target remac_tests

echo "== running scheduler/kernel/service tests under AddressSanitizer =="
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
  "$ASAN_DIR/tests/remac_tests" --gtest_filter="$FILTER"

echo "== ASan check passed =="
