#!/usr/bin/env bash
# Concurrency check: build the ThreadSanitizer configuration and run the
# scheduler and kernel tests under it. The task-graph executor, the shared
# thread pool and the thread-safe ledger are the only concurrent parts of
# the codebase, so this is the suite that must stay TSan-clean.
#
# Usage: scripts/check.sh [build-dir]   (default: build-tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
FILTER='ThreadPool.*:Ledger.*:TaskGraph.*:Sched*.*:Kernels*.*'

cmake -B "$BUILD_DIR" -S . -DREMAC_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target remac_tests

echo "== running scheduler/kernel tests under ThreadSanitizer =="
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  "$BUILD_DIR/tests/remac_tests" --gtest_filter="$FILTER"

echo "== TSan check passed =="
